package compose

import (
	"context"
	"fmt"
	"sort"

	"multival/internal/bisim"
	"multival/internal/lts"
)

// Report records the sizes observed during a (compositional or
// monolithic) generation, quantifying the state-space-explosion savings
// the Multival paper attributes to compositional verification.
type Report struct {
	// PeakStates is the largest intermediate LTS built.
	PeakStates int
	// PeakTransitions is the transition count of that LTS.
	PeakTransitions int
	// FinalStates / FinalTransitions describe the result.
	FinalStates      int
	FinalTransitions int
	// Steps lists one line per composition step, for logging.
	Steps []string
}

func (r *Report) observe(l *lts.LTS, step string) {
	if l.NumStates() > r.PeakStates {
		r.PeakStates = l.NumStates()
		r.PeakTransitions = l.NumTransitions()
	}
	r.Steps = append(r.Steps, fmt.Sprintf("%s: %d states, %d transitions", step, l.NumStates(), l.NumTransitions()))
}

// SmartReduce composes the network compositionally: every component is
// minimized first, then components are composed pairwise (smallest
// estimated product first); after each composition, labels that no
// remaining component synchronizes on and that appear in the Hide set are
// hidden, and the intermediate product is minimized modulo rel. The final
// result equals (modulo rel) the minimization of the monolithic product.
//
// rel should normally be bisim.Branching (or DivBranching to preserve
// livelocks); bisim.Strong is sound but reduces less.
func SmartReduce(n *Network, rel bisim.Relation) (*lts.LTS, *Report, error) {
	return SmartReduceOpt(n, rel, bisim.Options{})
}

// SmartReduceOpt is SmartReduce with explicit engine options: every
// intermediate minimization runs through the shared CSR-backed refinement
// engine, and every intermediate product generation through the sharded
// generator, with the given worker configuration.
func SmartReduceOpt(n *Network, rel bisim.Relation, opt bisim.Options) (*lts.LTS, *Report, error) {
	return SmartReduceCtx(context.Background(), n, rel, opt)
}

// SmartReduceCtx is SmartReduce with cancellation: every intermediate
// product generation and minimization observes ctx (and reports progress
// through opt.Progress), so a deadline or cancel aborts the compositional
// strategy between — and inside — its steps.
func SmartReduceCtx(ctx context.Context, n *Network, rel bisim.Relation, opt bisim.Options) (*lts.LTS, *Report, error) {
	if len(n.Components) == 0 {
		return nil, nil, fmt.Errorf("compose: empty network")
	}
	report := &Report{}
	hideSet := toSet(n.Hide)
	syncLabels := n.sortedSyncLabels()
	syncSet := toSet(syncLabels)

	// alphabet returns the set of gates used by an LTS.
	alphabet := func(l *lts.LTS) map[string]bool {
		set := map[string]bool{}
		l.EachTransition(func(t lts.Transition) {
			lab := l.LabelName(t.Label)
			if lab != lts.Tau {
				set[lts.Gate(lab)] = true
			}
		})
		return set
	}

	// Work list of minimized components. Each item carries the sync
	// gates it DECLARES (from the original component): participation in
	// a synchronization is a property of the component's interface, not
	// of which labels happen to survive reduction. If a declared gate
	// loses all its transitions (it became unreachable inside an
	// intermediate product), the gate is globally dead — the item can
	// never offer it — so it is pruned from every other component too,
	// exactly as the monolithic product would block it.
	type item struct {
		l    *lts.LTS
		decl map[string]bool
	}
	items := make([]*item, 0, len(n.Components))
	for i, c := range n.Components {
		decl := map[string]bool{}
		for g := range alphabet(c) {
			if syncSet[g] {
				decl[g] = true
			}
		}
		m, _, err := bisim.MinimizeCtx(ctx, c, rel, opt)
		if err != nil {
			return nil, report, err
		}
		report.observe(c, fmt.Sprintf("component %d", i))
		report.observe(m, fmt.Sprintf("component %d minimized", i))
		items = append(items, &item{l: m, decl: decl})
	}

	// pruneDeadGates removes, to a fixpoint, all transitions of sync
	// gates that some declaring item can no longer offer.
	pruneDeadGates := func() {
		for {
			// Pruning is an optimization: on cancellation stop early and
			// let the next MinimizeCtx round surface ctx.Err.
			if ctx.Err() != nil {
				return
			}
			dead := map[string]bool{}
			for _, it := range items {
				alpha := alphabet(it.l)
				for g := range it.decl {
					if !alpha[g] {
						dead[g] = true
					}
				}
			}
			if len(dead) == 0 {
				return
			}
			for _, it := range items {
				for g := range dead {
					delete(it.decl, g)
				}
				if anyGate(it.l, dead) {
					pruned, _ := dropGates(it.l, dead).Trim()
					it.l = pruned
				}
			}
		}
	}
	pruneDeadGates()

	for len(items) > 1 {
		// Pick the pair with the smallest product estimate among pairs
		// sharing at least one declared sync gate (fall back to the
		// two smallest components).
		bestI, bestJ := -1, -1
		bestCost := 0
		bestShared := false
		share := func(a, b map[string]bool) bool {
			for _, g := range syncLabels {
				if a[g] && b[g] {
					return true
				}
			}
			return false
		}
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				cost := items[i].l.NumStates() * items[j].l.NumStates()
				shared := share(items[i].decl, items[j].decl)
				better := false
				switch {
				case bestI < 0:
					better = true
				case shared != bestShared:
					better = shared // prefer pairs that synchronize
				default:
					better = cost < bestCost
				}
				if better {
					bestI, bestJ, bestCost, bestShared = i, j, cost, shared
				}
			}
		}

		a, b := items[bestI], items[bestJ]
		rest := make([]*item, 0, len(items)-2)
		for k, it := range items {
			if k != bestI && k != bestJ {
				rest = append(rest, it)
			}
		}

		// Sync gates for this pair: those DECLARED by either side
		// (multiway sync with a third component is handled because the
		// gate remains visible until every declaring component is
		// inside the composition).
		var pairSync []string
		for _, g := range syncLabels {
			if a.decl[g] || b.decl[g] {
				pairSync = append(pairSync, g)
			}
		}

		prod, err := (&Network{
			Components: []*lts.LTS{a.l, b.l},
			Sync:       pairSync,
			MaxStates:  n.MaxStates,
		}).GenerateOpt(ctx, GenOptions{Workers: opt.Workers, Progress: opt.Progress})
		if err != nil {
			return nil, report, err
		}
		report.observe(prod, fmt.Sprintf("compose(%d states x %d states)", a.l.NumStates(), b.l.NumStates()))

		// Hide gates that are slated for hiding and that no remaining
		// component declares (non-sync hidden gates never interact, so
		// they can always be hidden here).
		restDecl := map[string]bool{}
		for _, it := range rest {
			for g := range it.decl {
				restDecl[g] = true
			}
		}
		mergedDecl := map[string]bool{}
		for g := range a.decl {
			mergedDecl[g] = true
		}
		for g := range b.decl {
			mergedDecl[g] = true
		}
		prod = prod.Hide(func(lab string) bool {
			g := lts.Gate(lab)
			return hideSet[g] && (!syncSet[g] || !restDecl[g])
		})
		for g := range mergedDecl {
			if hideSet[g] && !restDecl[g] {
				delete(mergedDecl, g)
			}
		}

		m, _, err := bisim.MinimizeCtx(ctx, prod, rel, opt)
		if err != nil {
			return nil, report, err
		}
		report.observe(m, "minimized")
		items = append(rest, &item{l: m, decl: mergedDecl})
		pruneDeadGates()
	}

	final := items[0].l
	// Hide anything still in the hide set (e.g. gates used by a single
	// component).
	final = final.Hide(func(lab string) bool { return hideSet[lts.Gate(lab)] })
	final, _, err := bisim.MinimizeCtx(ctx, final, rel, opt)
	if err != nil {
		return nil, report, err
	}
	report.observe(final, "final")
	report.FinalStates = final.NumStates()
	report.FinalTransitions = final.NumTransitions()
	return final, report, nil
}

// anyGate reports whether l has a transition on one of the given gates.
func anyGate(l *lts.LTS, gates map[string]bool) bool {
	found := false
	l.EachTransition(func(t lts.Transition) {
		if !found {
			lab := l.LabelName(t.Label)
			if lab != lts.Tau && gates[lts.Gate(lab)] {
				found = true
			}
		}
	})
	return found
}

// dropGates removes all transitions whose gate is in the set.
func dropGates(l *lts.LTS, gates map[string]bool) *lts.LTS {
	out := lts.New(l.Name())
	out.AddStates(l.NumStates())
	l.EachTransition(func(t lts.Transition) {
		lab := l.LabelName(t.Label)
		if lab != lts.Tau && gates[lts.Gate(lab)] {
			return
		}
		out.AddTransition(t.Src, lab, t.Dst)
	})
	if l.NumStates() > 0 {
		out.SetInitial(l.Initial())
	}
	return out
}

// Monolithic generates the full product, hides, and minimizes, reporting
// the peak (the unminimized product). This is the baseline compositional
// verification is compared against (experiment E8).
func Monolithic(n *Network, rel bisim.Relation) (*lts.LTS, *Report, error) {
	return MonolithicOpt(n, rel, bisim.Options{})
}

// MonolithicOpt is Monolithic with explicit engine options.
func MonolithicOpt(n *Network, rel bisim.Relation, opt bisim.Options) (*lts.LTS, *Report, error) {
	return MonolithicCtx(context.Background(), n, rel, opt)
}

// MonolithicCtx is Monolithic with cancellation (see SmartReduceCtx).
func MonolithicCtx(ctx context.Context, n *Network, rel bisim.Relation, opt bisim.Options) (*lts.LTS, *Report, error) {
	report := &Report{}
	prod, err := n.GenerateOpt(ctx, GenOptions{Workers: opt.Workers, Progress: opt.Progress})
	if err != nil {
		return nil, report, err
	}
	report.observe(prod, "monolithic product")
	m, _, err := bisim.MinimizeCtx(ctx, prod, rel, opt)
	if err != nil {
		return nil, report, err
	}
	report.observe(m, "minimized")
	report.FinalStates = m.NumStates()
	report.FinalTransitions = m.NumTransitions()
	return m, report, nil
}

// SortedLabels returns the union of the alphabets of the components,
// sorted; useful for building hide sets.
func SortedLabels(comps []*lts.LTS) []string {
	set := map[string]bool{}
	for _, c := range comps {
		for _, lab := range c.VisibleLabels() {
			set[lab] = true
		}
	}
	out := make([]string, 0, len(set))
	for lab := range set {
		out = append(out, lab)
	}
	sort.Strings(out)
	return out
}
