package compose

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"multival/internal/bisim"
	"multival/internal/lts"
)

// randComponent generates a small component LTS over a shared gate pool,
// so random networks really synchronize.
type randComponent struct{ L *lts.LTS }

var gatePool = []string{"g", "h", "k"}

func (randComponent) Generate(rng *rand.Rand, _ int) reflect.Value {
	n := 2 + rng.Intn(4)
	l := lts.New("comp")
	l.AddStates(n)
	edges := 1 + rng.Intn(2*n)
	for e := 0; e < edges; e++ {
		src := lts.State(rng.Intn(n))
		dst := lts.State(rng.Intn(n))
		lab := gatePool[rng.Intn(len(gatePool))]
		if rng.Intn(4) == 0 {
			lab = "local" + string(rune('0'+rng.Intn(3)))
		}
		l.AddTransition(src, lab, dst)
	}
	l.SetInitial(0)
	return reflect.ValueOf(randComponent{l})
}

func qcfg() *quick.Config {
	return &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(404))}
}

func TestQuickProductCommutative(t *testing.T) {
	prop := func(a, b randComponent) bool {
		p1, err1 := Pair(a.L, b.L, []string{"g", "h"}, 1<<14)
		p2, err2 := Pair(b.L, a.L, []string{"g", "h"}, 1<<14)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return bisim.Equivalent(p1, p2, bisim.Strong)
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Note: PAIRWISE composition with alphabet-based participation is not
// associative in general (a gate whose transitions die inside one
// intermediate product no longer constrains the outside), which is
// exactly why SmartReduce tracks declared gates. The law that does hold
// is order-independence of the global product:
func TestQuickProductOrderIndependent(t *testing.T) {
	prop := func(a, b, c randComponent) bool {
		sync := []string{"g", "h", "k"}
		n1 := &Network{Components: []*lts.LTS{a.L, b.L, c.L}, Sync: sync, MaxStates: 1 << 14}
		n2 := &Network{Components: []*lts.LTS{c.L, a.L, b.L}, Sync: sync, MaxStates: 1 << 14}
		p1, err1 := n1.Generate()
		p2, err2 := n2.Generate()
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return bisim.Equivalent(p1, p2, bisim.Strong)
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickSmartReduceEquivalentToMonolithic(t *testing.T) {
	prop := func(a, b, c randComponent) bool {
		net := &Network{
			Components: []*lts.LTS{a.L, b.L, c.L},
			Sync:       []string{"g", "h"},
			Hide:       []string{"h"},
			MaxStates:  1 << 14,
		}
		mono, _, err1 := Monolithic(net, bisim.Branching)
		smart, _, err2 := SmartReduce(net, bisim.Branching)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return bisim.Equivalent(mono, smart, bisim.Branching)
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickProductDeterministicNumbering(t *testing.T) {
	prop := func(a, b randComponent) bool {
		p1, err1 := Pair(a.L, b.L, []string{"g"}, 1<<14)
		p2, err2 := Pair(a.L, b.L, []string{"g"}, 1<<14)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return lts.Isomorphic(p1, p2)
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}
