package compose

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"multival/internal/engine"
	"multival/internal/lts"
)

// equalLTS reports whether two LTSs are identical — same state numbering,
// same transition insertion order, same label table — not merely
// isomorphic or bisimilar. This is the determinism contract of the
// sharded generator: its renumbering pass must reproduce the sequential
// product exactly so content-addressed artifact keys stay byte-stable.
func equalLTS(a, b *lts.LTS) error {
	if a.NumStates() != b.NumStates() {
		return fmt.Errorf("states: %d vs %d", a.NumStates(), b.NumStates())
	}
	if a.NumTransitions() != b.NumTransitions() {
		return fmt.Errorf("transitions: %d vs %d", a.NumTransitions(), b.NumTransitions())
	}
	if a.Initial() != b.Initial() {
		return fmt.Errorf("initial: %d vs %d", a.Initial(), b.Initial())
	}
	al, bl := a.Labels(), b.Labels()
	if len(al) != len(bl) {
		return fmt.Errorf("labels: %d vs %d", len(al), len(bl))
	}
	for i := range al {
		if al[i] != bl[i] {
			return fmt.Errorf("label %d: %q vs %q", i, al[i], bl[i])
		}
	}
	for i := 0; i < a.NumTransitions(); i++ {
		ta, tb := a.Transition(i), b.Transition(i)
		if ta != tb {
			return fmt.Errorf("transition %d: %v vs %v", i, ta, tb)
		}
	}
	return nil
}

// TestQuickShardedEqualsSequential is the differential quick-check of the
// tentpole: across worker counts, the sharded product must be identical
// (not just bisimilar) to the sequential reference — and when one path
// errors, both must.
func TestQuickShardedEqualsSequential(t *testing.T) {
	for _, workers := range []int{2, 3, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			prop := func(a, b, c randComponent) bool {
				net := &Network{
					Components: []*lts.LTS{a.L, b.L, c.L},
					Sync:       []string{"g", "h"},
					Hide:       []string{"h"},
					MaxStates:  1 << 14,
				}
				seq, err1 := net.GenerateSeq(context.Background(), nil)
				par, err2 := net.GenerateOpt(context.Background(), GenOptions{Workers: workers})
				if err1 != nil || err2 != nil {
					return err1 != nil && err2 != nil
				}
				if err := equalLTS(seq, par); err != nil {
					t.Logf("workers=%d: %v", workers, err)
					return false
				}
				return true
			}
			if err := quick.Check(prop, qcfg()); err != nil {
				t.Error(err)
			}
		})
	}
}

// deepNetwork is a product with a long BFS diameter (two loosely coupled
// rings), forcing many cross-shard exchange rounds.
func deepNetwork(n int) *Network {
	ring := func(name string, n int, lab string) *lts.LTS {
		l := lts.New(name)
		l.AddStates(n)
		for s := 0; s < n; s++ {
			l.AddTransition(lts.State(s), fmt.Sprintf("%s%d", lab, s%7), lts.State((s+1)%n))
		}
		l.SetInitial(0)
		return l
	}
	return &Network{
		Components: []*lts.LTS{ring("a", n, "s"), ring("b", n+1, "t")},
		MaxStates:  1 << 22,
	}
}

// TestShardedDeepProductIdenticalAndHashStable drives a multi-round
// sharded generation (deep diameter, thousands of states) and checks both
// exact equality and Frozen.Hash stability — the digest the serve layer
// uses as artifact key.
func TestShardedDeepProductIdenticalAndHashStable(t *testing.T) {
	net := deepNetwork(60) // 60*61 = 3660 product states, diameter ~120
	seq, err := net.GenerateSeq(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		par, err := net.GenerateOpt(context.Background(), GenOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := equalLTS(seq, par); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sh, ph := seq.Freeze().Hash(), par.Freeze().Hash(); sh != ph {
			t.Fatalf("workers=%d: hash %s != %s", workers, ph, sh)
		}
	}
}

// TestShardedRandomProductIdentical covers a denser, branchier workload
// (random LTS times a small synchronizing monitor) than the quick-check
// components reach.
func TestShardedRandomProductIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	main := lts.Random(rng, lts.RandomConfig{
		States: 5000, Labels: 6, Density: 3, TauProb: 0.2, Connect: true,
	})
	monitor := lts.Random(rng, lts.RandomConfig{States: 5, Labels: 3, Density: 3, Connect: true})
	net := &Network{
		Components: []*lts.LTS{main, monitor},
		Sync:       []string{"a", "b", "c"},
		MaxStates:  1 << 20,
	}
	seq, err := net.GenerateSeq(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := net.GenerateOpt(context.Background(), GenOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := equalLTS(seq, par); err != nil {
		t.Fatal(err)
	}
}

// TestShardedStateBoundAbort aborts the sharded generation mid-shard on
// the state bound; the error must classify as engine.ErrStateBound, like
// the sequential path's.
func TestShardedStateBoundAbort(t *testing.T) {
	net := deepNetwork(60)
	net.MaxStates = 500
	for _, workers := range []int{2, 4} {
		_, err := net.GenerateOpt(context.Background(), GenOptions{Workers: workers})
		if !errors.Is(err, engine.ErrStateBound) {
			t.Fatalf("workers=%d: got %v, want ErrStateBound", workers, err)
		}
	}
	if _, err := net.GenerateSeq(context.Background(), nil); !errors.Is(err, engine.ErrStateBound) {
		t.Fatalf("sequential: got %v, want ErrStateBound", err)
	}
}

// TestShardedCancelMidRound cancels the context from the progress hook
// after the first exchange round; the generation must abort with the
// context error instead of completing.
func TestShardedCancelMidRound(t *testing.T) {
	net := deepNetwork(120) // enough rounds that cancellation lands mid-generation
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var reports int32
	progress := func(p engine.Progress) {
		if p.Stage == "compose" && atomic.AddInt32(&reports, 1) == 1 {
			cancel()
		}
	}
	_, err := net.GenerateOpt(ctx, GenOptions{Workers: 4, Progress: progress})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestShardedUnpackableFallsBackToSequential composes enough large
// components that their tuples exceed 64 packed bits; GenerateOpt must
// fall back to the sequential generator and still return the identical
// product (the components run in lockstep, so the product stays small).
func TestShardedUnpackableFallsBackToSequential(t *testing.T) {
	ring := func(n int) *lts.LTS {
		l := lts.New("ring")
		l.AddStates(n)
		for s := 0; s < n; s++ {
			l.AddTransition(lts.State(s), fmt.Sprintf("s%d", s%7), lts.State((s+1)%n))
		}
		l.SetInitial(0)
		return l
	}
	comps := make([]*lts.LTS, 8) // 8 x 9 bits = 72 bits: unpackable
	for i := range comps {
		comps[i] = ring(512)
	}
	net := &Network{
		Components: comps,
		Sync:       []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6"},
		MaxStates:  1 << 16,
	}
	seq, err := net.GenerateSeq(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := net.GenerateOpt(context.Background(), GenOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := equalLTS(seq, par); err != nil {
		t.Fatal(err)
	}
	if seq.NumStates() != 512 {
		t.Fatalf("lockstep product has %d states, want 512", seq.NumStates())
	}
}

// TestGenerateFinalProgressExact checks the completion report of both
// generators: the last "compose" progress snapshot must carry the exact
// state and transition counts of the finished product, not the last
// check-interval undercount.
func TestGenerateFinalProgressExact(t *testing.T) {
	net := deepNetwork(60)
	for _, workers := range []int{1, 4} {
		var last engine.Progress
		progress := func(p engine.Progress) {
			if p.Stage == "compose" {
				last = p
			}
		}
		p, err := net.GenerateOpt(context.Background(), GenOptions{Workers: workers, Progress: progress})
		if err != nil {
			t.Fatal(err)
		}
		if last.States != p.NumStates() || last.Transitions != p.NumTransitions() || !last.Done {
			t.Fatalf("workers=%d: final report %+v, product has %d states/%d transitions",
				workers, last, p.NumStates(), p.NumTransitions())
		}
	}

	// A product that deadlocks immediately (sync gates nobody can take
	// together) still gets a Done report — with zero transitions.
	a := lts.New("a")
	a.AddStates(1)
	a.AddTransition(0, "g !0", 0)
	a.SetInitial(0)
	b := lts.New("b")
	b.AddStates(1)
	b.AddTransition(0, "g !1", 0)
	b.SetInitial(0)
	dead := &Network{Components: []*lts.LTS{a, b}, Sync: []string{"g"}, MaxStates: 16}
	for _, workers := range []int{1, 4} {
		var last engine.Progress
		progress := func(p engine.Progress) {
			if p.Stage == "compose" {
				last = p
			}
		}
		p, err := dead.GenerateOpt(context.Background(), GenOptions{Workers: workers, Progress: progress})
		if err != nil {
			t.Fatal(err)
		}
		if p.NumTransitions() != 0 || !last.Done || last.States != 1 || last.Transitions != 0 {
			t.Fatalf("workers=%d: deadlocked product final report %+v (product %d/%d)",
				workers, last, p.NumStates(), p.NumTransitions())
		}
	}
}
