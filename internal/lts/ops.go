package lts

import (
	"fmt"
	"sort"

	"multival/internal/scc"
)

// Reachable returns the set of states reachable from the initial state, as
// a boolean slice indexed by state.
func (l *LTS) Reachable() []bool {
	seen := make([]bool, l.numStates)
	if l.numStates == 0 {
		return seen
	}
	stack := []State{l.initial}
	seen[l.initial] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		l.EachOutgoing(s, func(t Transition) {
			if !seen[t.Dst] {
				seen[t.Dst] = true
				stack = append(stack, t.Dst)
			}
		})
	}
	return seen
}

// Trim returns a copy of the LTS restricted to states reachable from the
// initial state, renumbered densely in BFS order, together with the mapping
// old state -> new state (-1 for removed states). Trimming in BFS order also
// canonicalizes state numbering for graphs produced deterministically.
func (l *LTS) Trim() (*LTS, []State) {
	mapping := make([]State, l.numStates)
	for i := range mapping {
		mapping[i] = -1
	}
	c := New(l.name)
	if l.numStates == 0 {
		return c, mapping
	}
	queue := []State{l.initial}
	mapping[l.initial] = c.AddState()
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		l.EachOutgoing(s, func(t Transition) {
			if mapping[t.Dst] < 0 {
				mapping[t.Dst] = c.AddState()
				queue = append(queue, t.Dst)
			}
		})
	}
	for _, s := range queue {
		l.EachOutgoing(s, func(t Transition) {
			c.AddTransition(mapping[t.Src], l.labels[t.Label], mapping[t.Dst])
		})
	}
	c.SetInitial(mapping[l.initial])
	return c, mapping
}

// Hide returns a copy of the LTS in which every label for which pred
// returns true is replaced by the internal action Tau. The initial state is
// preserved.
func (l *LTS) Hide(pred func(label string) bool) *LTS {
	return l.Relabel(func(lab string) string {
		if lab != Tau && pred(lab) {
			return Tau
		}
		return lab
	})
}

// HideAll returns a copy with every visible label replaced by Tau.
func (l *LTS) HideAll() *LTS {
	return l.Hide(func(string) bool { return true })
}

// HideLabels returns a copy hiding exactly the given label strings.
func (l *LTS) HideLabels(labels ...string) *LTS {
	set := make(map[string]bool, len(labels))
	for _, lab := range labels {
		set[lab] = true
	}
	return l.Hide(func(lab string) bool { return set[lab] })
}

// Relabel returns a copy of the LTS with every label transformed by f.
func (l *LTS) Relabel(f func(label string) string) *LTS {
	c := New(l.name)
	c.AddStates(l.numStates)
	for _, t := range l.trans {
		c.AddTransition(t.Src, f(l.labels[t.Label]), t.Dst)
	}
	if l.numStates > 0 {
		c.SetInitial(l.initial)
	}
	return c
}

// VisibleLabels returns the sorted set of non-tau labels that occur on at
// least one transition.
func (l *LTS) VisibleLabels() []string {
	used := make([]bool, len(l.labels))
	for _, t := range l.trans {
		used[t.Label] = true
	}
	var vis []string
	for id, ok := range used {
		if ok && l.labels[id] != Tau {
			vis = append(vis, l.labels[id])
		}
	}
	sort.Strings(vis)
	return vis
}

// TauClosure returns the set of states reachable from s by zero or more tau
// transitions, in ascending order.
func (l *LTS) TauClosure(s State) []State {
	tau, ok := l.labelIdx[Tau]
	if !ok {
		return []State{s}
	}
	seen := map[State]bool{s: true}
	stack := []State{s}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		l.EachOutgoing(cur, func(t Transition) {
			if t.Label == tau && !seen[t.Dst] {
				seen[t.Dst] = true
				stack = append(stack, t.Dst)
			}
		})
	}
	out := make([]State, 0, len(seen))
	for st := range seen {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Deterministic reports whether the LTS contains no tau transition and no
// state with two distinct successors under the same label.
func (l *LTS) Deterministic() bool {
	tau, hasTau := l.labelIdx[Tau]
	type key struct {
		s   State
		lab int
	}
	seen := make(map[key]State, len(l.trans))
	for _, t := range l.trans {
		if hasTau && t.Label == tau {
			return false
		}
		k := key{t.Src, t.Label}
		if prev, ok := seen[k]; ok && prev != t.Dst {
			return false
		}
		seen[k] = t.Dst
	}
	return true
}

// Determinize returns a deterministic LTS that is weak-trace equivalent to
// the input: states of the result are tau-closed subsets of input states
// (classic subset construction). Labels are preserved; the result contains
// no tau transitions. Beware: worst-case exponential.
func (l *LTS) Determinize() *LTS {
	d := New(l.name + ".det")
	if l.numStates == 0 {
		return d
	}
	tau := -1
	if id, ok := l.labelIdx[Tau]; ok {
		tau = id
	}

	encode := func(set []State) string {
		return fmt.Sprint(set)
	}
	closure := func(set []State) []State {
		var all []State
		for _, s := range set {
			all = append(all, l.TauClosure(s)...)
		}
		return dedupStates(all)
	}

	init := closure([]State{l.initial})
	index := map[string]State{encode(init): d.AddState()}
	queue := [][]State{init}
	d.SetInitial(0)
	for qi := 0; qi < len(queue); qi++ {
		set := queue[qi]
		src := index[encode(set)]
		// Group successors by label.
		byLabel := make(map[int][]State)
		for _, s := range set {
			l.EachOutgoing(s, func(t Transition) {
				if t.Label == tau {
					return
				}
				byLabel[t.Label] = append(byLabel[t.Label], t.Dst)
			})
		}
		labs := make([]int, 0, len(byLabel))
		for lab := range byLabel {
			labs = append(labs, lab)
		}
		sort.Ints(labs)
		for _, lab := range labs {
			next := closure(dedupStates(byLabel[lab]))
			k := encode(next)
			dst, ok := index[k]
			if !ok {
				dst = d.AddState()
				index[k] = dst
				queue = append(queue, next)
			}
			d.AddTransition(src, l.labels[lab], dst)
		}
	}
	return d
}

// StronglyConnectedComponents returns Tarjan SCCs restricted to transitions
// accepted by pred (pass nil to use all transitions). Components are
// returned in reverse topological order; each component lists its states in
// ascending order. The traversal runs on the shared iterative SCC engine
// (internal/scc) over a flat successor array built in one pass, so no
// per-state slices are allocated during the walk.
func (l *LTS) StronglyConnectedComponents(pred func(Transition) bool) [][]State {
	n := l.numStates
	// Filtered CSR adjacency: one counting pass, one fill pass.
	off := make([]int32, n+1)
	for _, t := range l.trans {
		if pred == nil || pred(t) {
			off[t.Src+1]++
		}
	}
	for s := 0; s < n; s++ {
		off[s+1] += off[s]
	}
	dst := make([]int32, off[n])
	pos := append([]int32(nil), off[:n]...)
	for _, t := range l.trans {
		if pred == nil || pred(t) {
			dst[pos[t.Src]] = int32(t.Dst)
			pos[t.Src]++
		}
	}
	comps32, _ := scc.Strong(n, func(s int32) []int32 {
		return dst[off[s]:off[s+1]]
	})
	comps := make([][]State, len(comps32))
	for i, c := range comps32 {
		comp := make([]State, len(c))
		for j, s := range c {
			comp[j] = State(s)
		}
		comps[i] = comp
	}
	return comps
}

// TauCycles reports whether the LTS contains a cycle of tau transitions
// (a divergence). Self tau-loops count.
func (l *LTS) TauCycles() bool {
	tau, ok := l.labelIdx[Tau]
	if !ok {
		return false
	}
	isTau := func(t Transition) bool { return t.Label == tau }
	for _, t := range l.trans {
		if t.Label == tau && t.Src == t.Dst {
			return true
		}
	}
	for _, comp := range l.StronglyConnectedComponents(isTau) {
		if len(comp) > 1 {
			return true
		}
	}
	return false
}

// Isomorphic reports whether two LTSs are identical up to the BFS
// renumbering performed by Trim (a cheap structural equality useful in
// tests; it is stronger than bisimilarity).
func Isomorphic(a, b *LTS) bool {
	ta, _ := a.Trim()
	tb, _ := b.Trim()
	if ta.numStates != tb.numStates || len(ta.trans) != len(tb.trans) {
		return false
	}
	ka := canonicalEdgeList(ta)
	kb := canonicalEdgeList(tb)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func canonicalEdgeList(l *LTS) []string {
	edges := make([]string, 0, len(l.trans))
	for _, t := range l.trans {
		edges = append(edges, fmt.Sprintf("%d|%s|%d", t.Src, l.labels[t.Label], t.Dst))
	}
	sort.Strings(edges)
	return edges
}
