// Package lts implements Labeled Transition Systems (LTSs), the semantic
// model underlying the whole Multival flow: process-calculus models are
// compiled into LTSs, which are then minimized modulo bisimulations,
// model-checked, composed, and decorated with stochastic timing.
//
// An LTS is a rooted, edge-labeled directed graph. States are dense integer
// indices; labels are interned strings. The internal (invisible) action is
// the label "i", following the CADP/Aldebaran convention.
package lts

import (
	"fmt"
	"sort"
	"strings"
)

// State identifies a state of an LTS. States are dense indices in
// [0, NumStates).
type State int

// Tau is the label of the internal (invisible) action, written "i" in the
// Aldebaran (.aut) format used by CADP.
const Tau = "i"

// Gate returns the gate of a transition label following LOTOS conventions:
// the prefix before the first space ("c !1" -> "c", "done" -> "done").
// This is the one label-splitting helper used everywhere the flow groups
// labels per gate (hiding, synchronization sets, rate decoration).
func Gate(label string) string {
	for i := 0; i < len(label); i++ {
		if label[i] == ' ' {
			return label[:i]
		}
	}
	return label
}

// Transition is a single labeled edge of an LTS.
type Transition struct {
	Src   State
	Label int // index into the LTS label table
	Dst   State
}

// LTS is a labeled transition system with a distinguished initial state.
// The zero value is an empty LTS with no states; use New to create one with
// a name, then AddState / AddTransition to populate it.
type LTS struct {
	name      string
	initial   State
	numStates int

	labels   []string
	labelIdx map[string]int

	trans []Transition
	out   [][]int32 // out[s] = indices into trans, in insertion order
	in    [][]int32 // in[s]  = indices into trans (maintained for refinement)
}

// New returns an empty LTS with the given descriptive name.
func New(name string) *LTS {
	return &LTS{name: name, labelIdx: make(map[string]int)}
}

// Name returns the descriptive name of the LTS.
func (l *LTS) Name() string { return l.name }

// SetName changes the descriptive name of the LTS.
func (l *LTS) SetName(name string) { l.name = name }

// AddState appends a fresh state and returns its index.
func (l *LTS) AddState() State {
	s := State(l.numStates)
	l.numStates++
	l.out = append(l.out, nil)
	l.in = append(l.in, nil)
	return s
}

// AddStates appends n fresh states and returns the index of the first one.
func (l *LTS) AddStates(n int) State {
	first := State(l.numStates)
	for i := 0; i < n; i++ {
		l.AddState()
	}
	return first
}

// NumStates returns the number of states.
func (l *LTS) NumStates() int { return l.numStates }

// NumTransitions returns the number of transitions.
func (l *LTS) NumTransitions() int { return len(l.trans) }

// Initial returns the initial state.
func (l *LTS) Initial() State { return l.initial }

// SetInitial sets the initial state. It panics if s is out of range.
func (l *LTS) SetInitial(s State) {
	l.checkState(s)
	l.initial = s
}

func (l *LTS) checkState(s State) {
	if s < 0 || int(s) >= l.numStates {
		panic(fmt.Sprintf("lts: state %d out of range [0,%d)", s, l.numStates))
	}
}

// LabelID interns a label string and returns its dense index.
func (l *LTS) LabelID(label string) int {
	if id, ok := l.labelIdx[label]; ok {
		return id
	}
	id := len(l.labels)
	l.labels = append(l.labels, label)
	l.labelIdx[label] = id
	return id
}

// LookupLabel returns the index of label, or -1 if the label does not occur.
func (l *LTS) LookupLabel(label string) int {
	if id, ok := l.labelIdx[label]; ok {
		return id
	}
	return -1
}

// LabelName returns the string of a label index.
func (l *LTS) LabelName(id int) string { return l.labels[id] }

// NumLabels returns the number of distinct labels interned so far.
func (l *LTS) NumLabels() int { return len(l.labels) }

// Labels returns a copy of the label table, indexed by label id.
func (l *LTS) Labels() []string {
	out := make([]string, len(l.labels))
	copy(out, l.labels)
	return out
}

// TauID returns the label index of the internal action, interning it if
// necessary.
func (l *LTS) TauID() int { return l.LabelID(Tau) }

// IsTau reports whether the label index denotes the internal action.
func (l *LTS) IsTau(id int) bool { return l.labels[id] == Tau }

// AddTransition adds an edge src --label--> dst, interning the label.
func (l *LTS) AddTransition(src State, label string, dst State) {
	l.AddTransitionID(src, l.LabelID(label), dst)
}

// AddTransitionID adds an edge with an already-interned label index.
func (l *LTS) AddTransitionID(src State, label int, dst State) {
	l.checkState(src)
	l.checkState(dst)
	if label < 0 || label >= len(l.labels) {
		panic(fmt.Sprintf("lts: label %d out of range [0,%d)", label, len(l.labels)))
	}
	idx := int32(len(l.trans))
	l.trans = append(l.trans, Transition{Src: src, Label: label, Dst: dst})
	l.out[src] = append(l.out[src], idx)
	l.in[dst] = append(l.in[dst], idx)
}

// Transition returns the i-th transition (in insertion order).
func (l *LTS) Transition(i int) Transition { return l.trans[i] }

// Outgoing returns the transitions leaving s, in insertion order.
// The returned slice is freshly allocated.
func (l *LTS) Outgoing(s State) []Transition {
	l.checkState(s)
	out := make([]Transition, len(l.out[s]))
	for i, idx := range l.out[s] {
		out[i] = l.trans[idx]
	}
	return out
}

// EachOutgoing calls f for every transition leaving s. It avoids the
// allocation of Outgoing and is the preferred traversal in hot loops.
func (l *LTS) EachOutgoing(s State, f func(Transition)) {
	for _, idx := range l.out[s] {
		f(l.trans[idx])
	}
}

// EachIncoming calls f for every transition entering s.
func (l *LTS) EachIncoming(s State, f func(Transition)) {
	for _, idx := range l.in[s] {
		f(l.trans[idx])
	}
}

// EachTransition calls f for every transition of the LTS.
func (l *LTS) EachTransition(f func(Transition)) {
	for _, t := range l.trans {
		f(t)
	}
}

// OutDegree returns the number of transitions leaving s.
func (l *LTS) OutDegree(s State) int { return len(l.out[s]) }

// Successors returns the distinct states reachable from s by one transition
// labeled with the given label id, in ascending order.
func (l *LTS) Successors(s State, label int) []State {
	var succ []State
	l.EachOutgoing(s, func(t Transition) {
		if t.Label == label {
			succ = append(succ, t.Dst)
		}
	})
	return dedupStates(succ)
}

// HasTransition reports whether the exact edge src --label--> dst exists.
func (l *LTS) HasTransition(src State, label int, dst State) bool {
	found := false
	l.EachOutgoing(src, func(t Transition) {
		if t.Label == label && t.Dst == dst {
			found = true
		}
	})
	return found
}

// IsDeadlock reports whether s has no outgoing transitions.
func (l *LTS) IsDeadlock(s State) bool { return len(l.out[s]) == 0 }

// DeadlockStates returns all states with no outgoing transitions.
func (l *LTS) DeadlockStates() []State {
	var dead []State
	for s := 0; s < l.numStates; s++ {
		if len(l.out[s]) == 0 {
			dead = append(dead, State(s))
		}
	}
	return dead
}

// Build constructs an LTS in one pass from parts whose shape is already
// known: the full label table (indexed by label id), and the transition
// list in final insertion order. Per-state adjacency is assembled by
// counting sort into exactly-sized backing arrays instead of
// per-transition appends, so bulk producers — the sharded product
// generator's renumbering pass — pay O(states + transitions) with a
// constant number of allocations. Build takes ownership of trans; the
// result is indistinguishable from an LTS built by AddTransitionID calls
// in the same order (later mutations remain valid: the per-state slices
// are capacity-clamped, so appends copy out of the shared arrays).
func Build(name string, numStates int, initial State, labels []string, trans []Transition) *LTS {
	l := &LTS{
		name:      name,
		numStates: numStates,
		labels:    append([]string(nil), labels...),
		labelIdx:  make(map[string]int, len(labels)),
		trans:     trans,
		out:       make([][]int32, numStates),
		in:        make([][]int32, numStates),
	}
	for i, lab := range l.labels {
		l.labelIdx[lab] = i
	}
	outDeg := make([]int32, numStates)
	inDeg := make([]int32, numStates)
	for _, t := range trans {
		l.checkState(t.Src)
		l.checkState(t.Dst)
		if t.Label < 0 || t.Label >= len(l.labels) {
			panic(fmt.Sprintf("lts: label %d out of range [0,%d)", t.Label, len(l.labels)))
		}
		outDeg[t.Src]++
		inDeg[t.Dst]++
	}
	outBuf := make([]int32, len(trans))
	inBuf := make([]int32, len(trans))
	var outOff, inOff int32
	for s := 0; s < numStates; s++ {
		l.out[s] = outBuf[outOff : outOff : outOff+outDeg[s]]
		l.in[s] = inBuf[inOff : inOff : inOff+inDeg[s]]
		outOff += outDeg[s]
		inOff += inDeg[s]
	}
	for i, t := range trans {
		l.out[t.Src] = append(l.out[t.Src], int32(i))
		l.in[t.Dst] = append(l.in[t.Dst], int32(i))
	}
	if numStates > 0 {
		l.SetInitial(initial)
	}
	return l
}

// Copy returns a deep copy of the LTS.
func (l *LTS) Copy() *LTS {
	c := New(l.name)
	c.initial = l.initial
	c.numStates = l.numStates
	c.labels = append([]string(nil), l.labels...)
	for i, lab := range c.labels {
		c.labelIdx[lab] = i
	}
	c.trans = append([]Transition(nil), l.trans...)
	c.out = make([][]int32, l.numStates)
	c.in = make([][]int32, l.numStates)
	for s := 0; s < l.numStates; s++ {
		c.out[s] = append([]int32(nil), l.out[s]...)
		c.in[s] = append([]int32(nil), l.in[s]...)
	}
	return c
}

// Stats summarizes the size of an LTS.
type Stats struct {
	States      int
	Transitions int
	Labels      int
	Deadlocks   int
	TauCount    int
}

// Stats computes summary statistics.
func (l *LTS) Stats() Stats {
	st := Stats{
		States:      l.numStates,
		Transitions: len(l.trans),
		Labels:      len(l.labels),
		Deadlocks:   len(l.DeadlockStates()),
	}
	tau, ok := l.labelIdx[Tau]
	if ok {
		for _, t := range l.trans {
			if t.Label == tau {
				st.TauCount++
			}
		}
	}
	return st
}

// String returns a compact human-readable summary.
func (l *LTS) String() string {
	return fmt.Sprintf("lts %q: %d states, %d transitions, %d labels",
		l.name, l.numStates, len(l.trans), len(l.labels))
}

// Dump renders every transition, one per line, for debugging and tests.
func (l *LTS) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "initial %d\n", l.initial)
	for _, t := range l.trans {
		fmt.Fprintf(&b, "%d --%s--> %d\n", t.Src, l.labels[t.Label], t.Dst)
	}
	return b.String()
}

func dedupStates(ss []State) []State {
	if len(ss) < 2 {
		return ss
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })
	w := 1
	for i := 1; i < len(ss); i++ {
		if ss[i] != ss[i-1] {
			ss[w] = ss[i]
			w++
		}
	}
	return ss[:w]
}
