package lts

import (
	"strings"
	"testing"
)

// chain builds 0 --a--> 1 --b--> 2 ... with the given labels.
func chain(t *testing.T, labels ...string) *LTS {
	t.Helper()
	l := New("chain")
	l.AddStates(len(labels) + 1)
	for i, lab := range labels {
		l.AddTransition(State(i), lab, State(i+1))
	}
	l.SetInitial(0)
	return l
}

func TestEmptyLTS(t *testing.T) {
	l := New("empty")
	if l.NumStates() != 0 || l.NumTransitions() != 0 {
		t.Fatalf("empty LTS has %d states, %d transitions", l.NumStates(), l.NumTransitions())
	}
	if got := len(l.DeadlockStates()); got != 0 {
		t.Fatalf("empty LTS has %d deadlock states", got)
	}
}

func TestAddStateAndTransition(t *testing.T) {
	l := New("t")
	s0 := l.AddState()
	s1 := l.AddState()
	if s0 != 0 || s1 != 1 {
		t.Fatalf("states numbered %d,%d; want 0,1", s0, s1)
	}
	l.AddTransition(s0, "a", s1)
	l.AddTransition(s0, "b", s0)
	if l.NumTransitions() != 2 {
		t.Fatalf("NumTransitions = %d, want 2", l.NumTransitions())
	}
	out := l.Outgoing(s0)
	if len(out) != 2 {
		t.Fatalf("Outgoing(s0) = %d edges, want 2", len(out))
	}
	if l.LabelName(out[0].Label) != "a" || out[0].Dst != s1 {
		t.Errorf("first edge = %v", out[0])
	}
	if !l.HasTransition(s0, l.LookupLabel("b"), s0) {
		t.Error("missing b self-loop")
	}
	if l.HasTransition(s1, l.LookupLabel("a"), s0) {
		t.Error("phantom transition reported")
	}
}

func TestLabelInterning(t *testing.T) {
	l := New("t")
	a1 := l.LabelID("a")
	b := l.LabelID("b")
	a2 := l.LabelID("a")
	if a1 != a2 {
		t.Errorf("label a interned twice: %d and %d", a1, a2)
	}
	if a1 == b {
		t.Errorf("distinct labels share id %d", a1)
	}
	if l.LookupLabel("zzz") != -1 {
		t.Error("LookupLabel of unknown label should be -1")
	}
	if l.NumLabels() != 2 {
		t.Errorf("NumLabels = %d, want 2", l.NumLabels())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	l := New("t")
	l.AddState()
	for name, f := range map[string]func(){
		"SetInitial":  func() { l.SetInitial(5) },
		"AddTransSrc": func() { l.AddTransition(7, "a", 0) },
		"AddTransDst": func() { l.AddTransition(0, "a", 7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSuccessorsDedup(t *testing.T) {
	l := New("t")
	l.AddStates(3)
	l.AddTransition(0, "a", 1)
	l.AddTransition(0, "a", 1) // duplicate edge
	l.AddTransition(0, "a", 2)
	l.AddTransition(0, "b", 2)
	succ := l.Successors(0, l.LookupLabel("a"))
	if len(succ) != 2 || succ[0] != 1 || succ[1] != 2 {
		t.Fatalf("Successors = %v, want [1 2]", succ)
	}
}

func TestDeadlockStates(t *testing.T) {
	l := chain(t, "a", "b")
	dead := l.DeadlockStates()
	if len(dead) != 1 || dead[0] != 2 {
		t.Fatalf("DeadlockStates = %v, want [2]", dead)
	}
	if l.IsDeadlock(0) || !l.IsDeadlock(2) {
		t.Error("IsDeadlock misclassifies")
	}
}

func TestCopyIsDeep(t *testing.T) {
	l := chain(t, "a")
	c := l.Copy()
	c.AddTransition(1, "extra", 0)
	if l.NumTransitions() != 1 {
		t.Fatal("mutation of copy leaked into original")
	}
	if c.NumTransitions() != 2 {
		t.Fatal("copy did not accept new transition")
	}
	if c.LookupLabel("a") == -1 {
		t.Fatal("copy lost label table")
	}
}

func TestStats(t *testing.T) {
	l := New("t")
	l.AddStates(3)
	l.AddTransition(0, "a", 1)
	l.AddTransition(1, Tau, 2)
	st := l.Stats()
	if st.States != 3 || st.Transitions != 2 || st.TauCount != 1 || st.Deadlocks != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestDumpAndString(t *testing.T) {
	l := chain(t, "a")
	if !strings.Contains(l.Dump(), "0 --a--> 1") {
		t.Errorf("Dump missing edge: %q", l.Dump())
	}
	if !strings.Contains(l.String(), "2 states") {
		t.Errorf("String = %q", l.String())
	}
}

func TestEachIncoming(t *testing.T) {
	l := New("t")
	l.AddStates(3)
	l.AddTransition(0, "a", 2)
	l.AddTransition(1, "b", 2)
	var n int
	l.EachIncoming(2, func(tr Transition) { n++ })
	if n != 2 {
		t.Fatalf("EachIncoming visited %d edges, want 2", n)
	}
}
