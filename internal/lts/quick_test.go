package lts

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randLTS wraps an LTS for testing/quick generation.
type randLTS struct{ L *LTS }

// Generate implements quick.Generator with a connected random LTS of
// moderate size.
func (randLTS) Generate(rng *rand.Rand, size int) reflect.Value {
	if size < 2 {
		size = 2
	}
	if size > 30 {
		size = 30
	}
	l := Random(rng, RandomConfig{
		States:  2 + rng.Intn(size),
		Labels:  1 + rng.Intn(4),
		Density: 0.5 + rng.Float64()*2.5,
		TauProb: rng.Float64() * 0.4,
		Connect: rng.Intn(2) == 0,
	})
	return reflect.ValueOf(randLTS{l})
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(20080310))}
}

func TestQuickTrimIdempotent(t *testing.T) {
	prop := func(r randLTS) bool {
		t1, _ := r.L.Trim()
		t2, _ := t1.Trim()
		return Isomorphic(t1, t2)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickTrimPreservesReachableCounts(t *testing.T) {
	prop := func(r randLTS) bool {
		reach := r.L.Reachable()
		n := 0
		for _, ok := range reach {
			if ok {
				n++
			}
		}
		trimmed, _ := r.L.Trim()
		return trimmed.NumStates() == n
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickHideAllRemovesVisible(t *testing.T) {
	prop := func(r randLTS) bool {
		h := r.L.HideAll()
		return len(h.VisibleLabels()) == 0 &&
			h.NumTransitions() == r.L.NumTransitions() &&
			h.NumStates() == r.L.NumStates()
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickRelabelIdentityIsNoop(t *testing.T) {
	prop := func(r randLTS) bool {
		c := r.L.Relabel(func(s string) string { return s })
		return Isomorphic(r.L, c)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickDeterminizeIsDeterministic(t *testing.T) {
	prop := func(r randLTS) bool {
		trimmed, _ := r.L.Trim()
		if trimmed.NumStates() > 12 {
			return true // keep subset construction small
		}
		return trimmed.Determinize().Deterministic()
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickTauClosureContainsSelf(t *testing.T) {
	prop := func(r randLTS) bool {
		for s := 0; s < r.L.NumStates(); s++ {
			cl := r.L.TauClosure(State(s))
			found := false
			for _, c := range cl {
				if c == State(s) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickSCCPartitionsStates(t *testing.T) {
	prop := func(r randLTS) bool {
		comps := r.L.StronglyConnectedComponents(nil)
		seen := make([]bool, r.L.NumStates())
		total := 0
		for _, c := range comps {
			for _, s := range c {
				if seen[s] {
					return false // state in two components
				}
				seen[s] = true
				total++
			}
		}
		return total == r.L.NumStates()
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickCopyEqualsOriginal(t *testing.T) {
	prop := func(r randLTS) bool {
		return Isomorphic(r.L, r.L.Copy())
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}
