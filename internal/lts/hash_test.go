package lts

import (
	"math/rand"
	"testing"
)

// buildShuffled builds the same three-state system with transitions added
// in the given order and labels interned in the given order.
func buildShuffled(labelOrder []string, transOrder []int) *LTS {
	l := New("h")
	l.AddStates(3)
	for _, lab := range labelOrder {
		l.LabelID(lab)
	}
	trans := []Transition{
		{Src: 0, Label: l.LabelID("a"), Dst: 1},
		{Src: 0, Label: l.LabelID("b"), Dst: 2},
		{Src: 1, Label: l.LabelID(Tau), Dst: 2},
		{Src: 2, Label: l.LabelID("a"), Dst: 0},
	}
	for _, i := range transOrder {
		t := trans[i]
		l.AddTransitionID(t.Src, t.Label, t.Dst)
	}
	l.SetInitial(1)
	return l
}

func TestHashCanonical(t *testing.T) {
	base := buildShuffled([]string{"a", "b", Tau}, []int{0, 1, 2, 3}).Freeze().Hash()
	if base == "" {
		t.Fatal("empty hash")
	}
	// Transition insertion order and label interning order are invisible.
	for _, tc := range []struct {
		labels []string
		order  []int
	}{
		{[]string{Tau, "b", "a"}, []int{3, 2, 1, 0}},
		{[]string{"b"}, []int{2, 0, 3, 1}},
		{nil, []int{1, 3, 0, 2}},
	} {
		if got := buildShuffled(tc.labels, tc.order).Freeze().Hash(); got != base {
			t.Errorf("hash varies with build order %v/%v: %s != %s", tc.labels, tc.order, got, base)
		}
	}
	// Unused interned labels are invisible.
	withUnused := buildShuffled([]string{"zzz", "a"}, []int{0, 1, 2, 3})
	if got := withUnused.Freeze().Hash(); got != base {
		t.Errorf("unused label changed the hash: %s != %s", got, base)
	}
	// Thaw round-trips the hash.
	if got := buildShuffled(nil, []int{0, 1, 2, 3}).Freeze().Thaw().Freeze().Hash(); got != base {
		t.Errorf("thaw round trip changed the hash: %s != %s", got, base)
	}
}

func TestHashSensitive(t *testing.T) {
	base := buildShuffled(nil, []int{0, 1, 2, 3})
	seen := map[string]string{base.Freeze().Hash(): "base"}
	record := func(name string, l *LTS) {
		h := l.Freeze().Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[h] = name
	}

	// A changed initial state.
	moved := base.Copy()
	moved.SetInitial(0)
	record("initial", moved)

	// An extra (unreachable) state.
	grown := base.Copy()
	grown.AddState()
	record("extra state", grown)

	// An extra transition, a relabeled transition, a redirected one.
	extra := base.Copy()
	extra.AddTransition(2, "b", 1)
	record("extra transition", extra)
	relabeled := buildShuffled(nil, []int{0, 1, 2})
	relabeled.AddTransition(2, "c", 0)
	relabeled.SetInitial(1)
	record("relabeled", relabeled)
	redirected := buildShuffled(nil, []int{0, 1, 2})
	redirected.AddTransition(2, "a", 1)
	redirected.SetInitial(1)
	record("redirected", redirected)

	// A duplicated transition: the digest covers the multiset.
	doubled := base.Copy()
	doubled.AddTransition(0, "a", 1)
	record("duplicated transition", doubled)
}

// TestHashRandomStability: hashing is deterministic across repeated
// freezes of randomly built systems.
func TestHashRandomStability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		l := New("r")
		l.AddStates(n)
		labels := []string{"a", "b", "c", Tau, "d !1"}
		for i := 0; i < 3*n; i++ {
			l.AddTransition(State(rng.Intn(n)), labels[rng.Intn(len(labels))], State(rng.Intn(n)))
		}
		l.SetInitial(State(rng.Intn(n)))
		if h1, h2 := l.Freeze().Hash(), l.Freeze().Hash(); h1 != h2 {
			t.Fatalf("trial %d: repeated freeze hashes differ: %s != %s", trial, h1, h2)
		}
	}
}
