package lts

import (
	"math/rand"
	"testing"
)

func TestTrimRemovesUnreachable(t *testing.T) {
	l := New("t")
	l.AddStates(4)
	l.AddTransition(0, "a", 1)
	l.AddTransition(2, "b", 3) // unreachable island
	l.SetInitial(0)
	trimmed, mapping := l.Trim()
	if trimmed.NumStates() != 2 {
		t.Fatalf("trimmed to %d states, want 2", trimmed.NumStates())
	}
	if mapping[2] != -1 || mapping[3] != -1 {
		t.Errorf("unreachable states kept in mapping: %v", mapping)
	}
	if mapping[0] != 0 {
		t.Errorf("initial state mapped to %d, want 0", mapping[0])
	}
}

func TestTrimBFSOrderCanonical(t *testing.T) {
	l := New("t")
	l.AddStates(3)
	l.AddTransition(0, "a", 2)
	l.AddTransition(0, "b", 1)
	l.AddTransition(2, "c", 1)
	l.SetInitial(0)
	trimmed, mapping := l.Trim()
	// BFS from 0 discovers 2 (via a, first edge) before 1.
	if mapping[2] != 1 || mapping[1] != 2 {
		t.Fatalf("BFS renumbering = %v, want [0 2 1]", mapping)
	}
	if trimmed.NumTransitions() != 3 {
		t.Fatalf("trim dropped transitions: %d", trimmed.NumTransitions())
	}
}

func TestHide(t *testing.T) {
	l := New("t")
	l.AddStates(2)
	l.AddTransition(0, "secret", 1)
	l.AddTransition(0, "public", 1)
	h := l.HideLabels("secret")
	var tauSeen, pubSeen bool
	h.EachTransition(func(tr Transition) {
		switch h.LabelName(tr.Label) {
		case Tau:
			tauSeen = true
		case "public":
			pubSeen = true
		default:
			t.Errorf("unexpected label %q", h.LabelName(tr.Label))
		}
	})
	if !tauSeen || !pubSeen {
		t.Fatalf("hide produced tau=%v public=%v", tauSeen, pubSeen)
	}
	if got := h.VisibleLabels(); len(got) != 1 || got[0] != "public" {
		t.Fatalf("VisibleLabels = %v", got)
	}
}

func TestHideAll(t *testing.T) {
	l := New("t")
	l.AddStates(2)
	l.AddTransition(0, "a", 1)
	l.AddTransition(1, Tau, 0)
	h := l.HideAll()
	if len(h.VisibleLabels()) != 0 {
		t.Fatalf("HideAll left visible labels %v", h.VisibleLabels())
	}
	if h.NumTransitions() != 2 {
		t.Fatalf("HideAll changed transition count")
	}
}

func TestTauClosure(t *testing.T) {
	l := New("t")
	l.AddStates(4)
	l.AddTransition(0, Tau, 1)
	l.AddTransition(1, Tau, 2)
	l.AddTransition(2, "a", 3)
	got := l.TauClosure(0)
	want := []State{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("TauClosure = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TauClosure = %v, want %v", got, want)
		}
	}
	// No tau label interned at all.
	l2 := New("t2")
	l2.AddState()
	if got := l2.TauClosure(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("TauClosure without tau = %v", got)
	}
}

func TestDeterministic(t *testing.T) {
	det := chain(t, "a", "b")
	if !det.Deterministic() {
		t.Error("chain should be deterministic")
	}
	nd := New("nd")
	nd.AddStates(3)
	nd.AddTransition(0, "a", 1)
	nd.AddTransition(0, "a", 2)
	if nd.Deterministic() {
		t.Error("branching on same label should be nondeterministic")
	}
	tauL := New("tau")
	tauL.AddStates(2)
	tauL.AddTransition(0, Tau, 1)
	if tauL.Deterministic() {
		t.Error("tau transition should make the LTS nondeterministic")
	}
	// Duplicate edges to the same destination remain deterministic.
	dup := New("dup")
	dup.AddStates(2)
	dup.AddTransition(0, "a", 1)
	dup.AddTransition(0, "a", 1)
	if !dup.Deterministic() {
		t.Error("duplicate same-target edges are still deterministic")
	}
}

func TestDeterminize(t *testing.T) {
	// 0 -tau-> 1 -a-> 2 ;  0 -a-> 3 ; both a-targets merge in subset
	l := New("t")
	l.AddStates(4)
	l.AddTransition(0, Tau, 1)
	l.AddTransition(1, "a", 2)
	l.AddTransition(0, "a", 3)
	l.SetInitial(0)
	d := l.Determinize()
	if !d.Deterministic() {
		t.Fatal("Determinize returned a nondeterministic LTS")
	}
	// Initial subset {0,1} --a--> {2,3}: exactly one a-transition from init.
	succ := d.Successors(d.Initial(), d.LookupLabel("a"))
	if len(succ) != 1 {
		t.Fatalf("determinized initial state has %d a-successors, want 1", len(succ))
	}
}

func TestDeterminizePreservesTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		l := Random(rng, RandomConfig{States: 8, Labels: 2, Density: 1.6, TauProb: 0.3, Connect: true})
		d := l.Determinize()
		if !d.Deterministic() {
			t.Fatal("non-deterministic result")
		}
		// Every trace of length <= 4 of l must exist in d and vice versa.
		tr1 := traces(l, 4)
		tr2 := traces(d, 4)
		if len(tr1) != len(tr2) {
			t.Fatalf("trace sets differ: %d vs %d", len(tr1), len(tr2))
		}
		for k := range tr1 {
			if !tr2[k] {
				t.Fatalf("trace %q lost by determinization", k)
			}
		}
	}
}

// traces returns the set of visible traces of length <= depth.
func traces(l *LTS, depth int) map[string]bool {
	out := map[string]bool{"": true}
	type cfg struct {
		s     State
		trace string
		d     int
	}
	var tau int = -1
	if id := l.LookupLabel(Tau); id >= 0 {
		tau = id
	}
	seen := map[cfg]bool{}
	stack := []cfg{{l.Initial(), "", 0}}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[c] {
			continue
		}
		seen[c] = true
		out[c.trace] = true
		if c.d == depth {
			continue
		}
		l.EachOutgoing(c.s, func(t Transition) {
			if t.Label == tau {
				stack = append(stack, cfg{t.Dst, c.trace, c.d})
			} else {
				stack = append(stack, cfg{t.Dst, c.trace + "." + l.LabelName(t.Label), c.d + 1})
			}
		})
	}
	return out
}

func TestSCC(t *testing.T) {
	l := New("t")
	l.AddStates(5)
	l.AddTransition(0, "a", 1)
	l.AddTransition(1, "a", 2)
	l.AddTransition(2, "a", 0) // cycle {0,1,2}
	l.AddTransition(2, "b", 3)
	l.AddTransition(3, "b", 4)
	comps := l.StronglyConnectedComponents(nil)
	if len(comps) != 3 {
		t.Fatalf("got %d SCCs, want 3: %v", len(comps), comps)
	}
	var big []State
	for _, c := range comps {
		if len(c) == 3 {
			big = c
		}
	}
	if big == nil || big[0] != 0 || big[1] != 1 || big[2] != 2 {
		t.Fatalf("cycle SCC = %v", big)
	}
}

func TestTauCycles(t *testing.T) {
	l := New("t")
	l.AddStates(3)
	l.AddTransition(0, "a", 1)
	l.AddTransition(1, Tau, 2)
	l.AddTransition(2, Tau, 1)
	if !l.TauCycles() {
		t.Error("tau cycle not detected")
	}
	l2 := chain(t, "a", Tau, "b")
	if l2.TauCycles() {
		t.Error("false positive tau cycle")
	}
	l3 := New("selfloop")
	l3.AddState()
	l3.AddTransition(0, Tau, 0)
	if !l3.TauCycles() {
		t.Error("tau self-loop not detected")
	}
}

func TestIsomorphic(t *testing.T) {
	a := chain(t, "a", "b")
	b := chain(t, "a", "b")
	if !Isomorphic(a, b) {
		t.Error("identical chains not isomorphic")
	}
	c := chain(t, "a", "c")
	if Isomorphic(a, c) {
		t.Error("different labels reported isomorphic")
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		l := Random(rng, RandomConfig{States: 20, Labels: 3, Density: 2, Connect: true})
		reach := l.Reachable()
		for s, ok := range reach {
			if !ok {
				t.Fatalf("state %d unreachable in connected random LTS", s)
			}
		}
	}
}

func TestRandomRespectsSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := Random(rng, RandomConfig{States: 5, Labels: 30, Density: 3, Connect: false})
	if l.NumStates() != 5 {
		t.Fatalf("NumStates = %d, want 5", l.NumStates())
	}
}
