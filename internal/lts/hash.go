package lts

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Hash returns a canonical content digest of the frozen LTS: the
// hex-encoded SHA-256 of its behavioural content. The digest depends only
// on the number of states, the initial state, and the labeled transition
// multiset (with labels compared as strings), so it is invariant under
// transition insertion order and label interning order: two builds of the
// same system hash identically however their transitions were added.
// Unused interned labels and the descriptive name do not contribute.
//
// The digest is the content address of the artifact cache in
// internal/serve: models, quotients and solution vectors are keyed by it,
// so behaviourally identical inputs share one cached computation.
func (f *Frozen) Hash() string {
	h := sha256.New()
	var buf [8]byte
	// All digest words go through writeU64 so the encoding is identical
	// on 32- and 64-bit platforms (packed (rank, dst) pairs are 64 bits
	// wide and must not pass through int).
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeInt := func(v int) { writeU64(uint64(v)) }

	// Rank the labels that occur on transitions by name, so label ids
	// (interning order) never leak into the digest.
	used := make([]bool, len(f.labels))
	for _, lab := range f.outLab {
		used[lab] = true
	}
	var names []string
	for id, u := range used {
		if u {
			names = append(names, f.labels[id])
		}
	}
	sort.Strings(names)
	rank := make([]int32, len(f.labels))
	for id, u := range used {
		if u {
			rank[id] = int32(sort.SearchStrings(names, f.labels[id]))
		}
	}

	writeInt(f.numStates)
	writeInt(int(f.initial))
	writeInt(len(names))
	for _, name := range names {
		writeInt(len(name))
		h.Write([]byte(name))
	}

	// Rows are CSR-sorted by (label id, dst); re-sort each row by
	// (label rank, dst) so the digest is canonical, then emit it.
	var row []int64 // (rank << 32) | dst, both int32
	for s := 0; s < f.numStates; s++ {
		lo, hi := f.outOff[s], f.outOff[s+1]
		row = row[:0]
		for i := lo; i < hi; i++ {
			row = append(row, int64(rank[f.outLab[i]])<<32|int64(f.outDst[i]))
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		writeInt(len(row))
		for _, v := range row {
			writeU64(uint64(v))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
