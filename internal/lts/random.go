package lts

import "math/rand"

// RandomConfig controls Random LTS generation (used by property-based
// tests and benchmarks across the module).
type RandomConfig struct {
	States   int     // number of states (>= 1)
	Labels   int     // number of distinct visible labels (>= 1)
	Density  float64 // expected outgoing transitions per state
	TauProb  float64 // probability that a generated transition is tau
	Connect  bool    // if true, guarantee all states reachable from 0
	SelfLoop bool    // allow self loops
}

// Random generates a pseudo-random LTS from cfg using rng. The initial
// state is 0. With cfg.Connect, a random spanning structure guarantees
// reachability, making Trim a no-op.
func Random(rng *rand.Rand, cfg RandomConfig) *LTS {
	if cfg.States < 1 {
		cfg.States = 1
	}
	if cfg.Labels < 1 {
		cfg.Labels = 1
	}
	if cfg.Density <= 0 {
		cfg.Density = 2
	}
	l := New("random")
	l.AddStates(cfg.States)
	labels := make([]string, cfg.Labels)
	for i := range labels {
		labels[i] = string(rune('a' + i%26))
		if i >= 26 {
			labels[i] = labels[i] + string(rune('0'+i/26))
		}
	}
	pick := func(src State) (string, State) {
		lab := labels[rng.Intn(len(labels))]
		if cfg.TauProb > 0 && rng.Float64() < cfg.TauProb {
			lab = Tau
		}
		dst := State(rng.Intn(cfg.States))
		if !cfg.SelfLoop && dst == src && cfg.States > 1 {
			dst = State((int(dst) + 1) % cfg.States)
		}
		return lab, dst
	}
	if cfg.Connect {
		// Spanning tree: state k reached from a random earlier state.
		for k := 1; k < cfg.States; k++ {
			src := State(rng.Intn(k))
			lab, _ := pick(src)
			l.AddTransition(src, lab, State(k))
		}
	}
	extra := int(float64(cfg.States) * cfg.Density)
	if cfg.Connect {
		extra -= cfg.States - 1
	}
	for i := 0; i < extra; i++ {
		src := State(rng.Intn(cfg.States))
		lab, dst := pick(src)
		l.AddTransition(src, lab, dst)
	}
	l.SetInitial(0)
	return l
}
