package lts

import (
	"fmt"
	"sort"
)

// Frozen is an immutable, cache-friendly snapshot of an LTS in compressed
// sparse row (CSR) form. Both the outgoing and the incoming adjacency are
// materialized once, with the transitions of every row sorted by (label,
// endpoint), so that hot algorithms — signature-based partition refinement,
// on-the-fly synchronized products, reachability sweeps — can scan flat
// int32 arrays instead of chasing per-state slices, and can locate all
// transitions of a given label in a row by binary search.
//
// A Frozen shares nothing with the builder LTS it was created from: later
// mutations of the builder do not affect it, and it is safe for concurrent
// readers without synchronization.
type Frozen struct {
	name      string
	initial   State
	numStates int
	labels    []string
	labelIdx  map[string]int
	tau       int // label id of Tau, or -1 if not interned

	// Outgoing CSR: row s spans outLab/outDst[outOff[s]:outOff[s+1]],
	// sorted by (label, dst).
	outOff []int32
	outLab []int32
	outDst []int32

	// Incoming CSR: row s spans inLab/inSrc[inOff[s]:inOff[s+1]],
	// sorted by (label, src).
	inOff []int32
	inLab []int32
	inSrc []int32
}

// Freeze builds the immutable CSR form of the LTS. The builder remains
// usable and unchanged; call Freeze again after further mutations to obtain
// a fresh snapshot.
func (l *LTS) Freeze() *Frozen {
	n := l.numStates
	m := len(l.trans)
	if m > 1<<31-1 {
		panic(fmt.Sprintf("lts: %d transitions overflow the CSR index type", m))
	}
	f := &Frozen{
		name:      l.name,
		initial:   l.initial,
		numStates: n,
		labels:    append([]string(nil), l.labels...),
		labelIdx:  make(map[string]int, len(l.labels)),
		tau:       -1,
		outOff:    make([]int32, n+1),
		outLab:    make([]int32, m),
		outDst:    make([]int32, m),
		inOff:     make([]int32, n+1),
		inLab:     make([]int32, m),
		inSrc:     make([]int32, m),
	}
	for i, lab := range f.labels {
		f.labelIdx[lab] = i
		if lab == Tau {
			f.tau = i
		}
	}

	// Counting sort by source (resp. destination) state.
	for _, t := range l.trans {
		f.outOff[t.Src+1]++
		f.inOff[t.Dst+1]++
	}
	for s := 0; s < n; s++ {
		f.outOff[s+1] += f.outOff[s]
		f.inOff[s+1] += f.inOff[s]
	}
	outPos := append([]int32(nil), f.outOff[:n]...)
	inPos := append([]int32(nil), f.inOff[:n]...)
	for _, t := range l.trans {
		p := outPos[t.Src]
		f.outLab[p] = int32(t.Label)
		f.outDst[p] = int32(t.Dst)
		outPos[t.Src]++
		p = inPos[t.Dst]
		f.inLab[p] = int32(t.Label)
		f.inSrc[p] = int32(t.Src)
		inPos[t.Dst]++
	}
	sortCSRRows(f.outOff, f.outLab, f.outDst, n)
	sortCSRRows(f.inOff, f.inLab, f.inSrc, n)
	return f
}

// sortCSRRows sorts each CSR row by (label, endpoint).
func sortCSRRows(off, lab, end []int32, n int) {
	for s := 0; s < n; s++ {
		lo, hi := off[s], off[s+1]
		if hi-lo < 2 {
			continue
		}
		row := csrRow{lab: lab[lo:hi], end: end[lo:hi]}
		sort.Sort(row)
	}
}

type csrRow struct{ lab, end []int32 }

func (r csrRow) Len() int { return len(r.lab) }
func (r csrRow) Less(i, j int) bool {
	if r.lab[i] != r.lab[j] {
		return r.lab[i] < r.lab[j]
	}
	return r.end[i] < r.end[j]
}
func (r csrRow) Swap(i, j int) {
	r.lab[i], r.lab[j] = r.lab[j], r.lab[i]
	r.end[i], r.end[j] = r.end[j], r.end[i]
}

// Name returns the descriptive name of the frozen LTS.
func (f *Frozen) Name() string { return f.name }

// NumStates returns the number of states.
func (f *Frozen) NumStates() int { return f.numStates }

// NumTransitions returns the number of transitions.
func (f *Frozen) NumTransitions() int { return len(f.outLab) }

// NumLabels returns the number of interned labels.
func (f *Frozen) NumLabels() int { return len(f.labels) }

// Initial returns the initial state.
func (f *Frozen) Initial() State { return f.initial }

// LabelName returns the string of a label index.
func (f *Frozen) LabelName(id int) string { return f.labels[id] }

// LookupLabel returns the index of label, or -1 if it was never interned.
func (f *Frozen) LookupLabel(label string) int {
	if id, ok := f.labelIdx[label]; ok {
		return id
	}
	return -1
}

// TauID returns the label index of the internal action, or -1 when the
// frozen LTS has no tau label.
func (f *Frozen) TauID() int { return f.tau }

// Out returns the outgoing row of s: parallel slices of labels and
// destinations, sorted by (label, dst). The slices alias the CSR arrays and
// must not be modified.
func (f *Frozen) Out(s State) (labels, dsts []int32) {
	lo, hi := f.outOff[s], f.outOff[s+1]
	return f.outLab[lo:hi], f.outDst[lo:hi]
}

// In returns the incoming row of s: parallel slices of labels and sources,
// sorted by (label, src). The slices alias the CSR arrays and must not be
// modified.
func (f *Frozen) In(s State) (labels, srcs []int32) {
	lo, hi := f.inOff[s], f.inOff[s+1]
	return f.inLab[lo:hi], f.inSrc[lo:hi]
}

// OutDegree returns the number of transitions leaving s.
func (f *Frozen) OutDegree(s State) int { return int(f.outOff[s+1] - f.outOff[s]) }

// Succ returns the destinations of the transitions leaving s with the given
// label, located by binary search in the label-sorted row. The returned
// slice aliases the CSR arrays, is sorted ascending (possibly with
// duplicates), and must not be modified.
func (f *Frozen) Succ(s State, label int) []int32 {
	labs, dsts := f.Out(s)
	lo := sort.Search(len(labs), func(i int) bool { return labs[i] >= int32(label) })
	hi := lo
	for hi < len(labs) && labs[hi] == int32(label) {
		hi++
	}
	return dsts[lo:hi]
}

// EachOut calls fn for every outgoing transition of s in (label, dst)
// order.
func (f *Frozen) EachOut(s State, fn func(label int, dst State)) {
	labs, dsts := f.Out(s)
	for i := range labs {
		fn(int(labs[i]), State(dsts[i]))
	}
}

// Thaw rebuilds a mutable LTS from the frozen form. States, the initial
// state, the label table, and the transition multiset are preserved exactly
// (transitions are emitted in CSR order: by source, then label, then
// destination).
func (f *Frozen) Thaw() *LTS {
	l := New(f.name)
	l.AddStates(f.numStates)
	for _, lab := range f.labels {
		l.LabelID(lab)
	}
	for s := 0; s < f.numStates; s++ {
		labs, dsts := f.Out(State(s))
		for i := range labs {
			l.AddTransitionID(State(s), int(labs[i]), State(dsts[i]))
		}
	}
	if f.numStates > 0 {
		l.SetInitial(f.initial)
	}
	return l
}
