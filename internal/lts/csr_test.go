package lts

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// edgeMultiset canonically encodes all transitions of an LTS.
func edgeMultiset(l *LTS) [][3]int {
	var out [][3]int
	l.EachTransition(func(t Transition) {
		out = append(out, [3]int{int(t.Src), t.Label, int(t.Dst)})
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	return out
}

func TestQuickFreezeThawRoundTrip(t *testing.T) {
	prop := func(r randLTS) bool {
		f := r.L.Freeze()
		back := f.Thaw()
		if back.NumStates() != r.L.NumStates() ||
			back.NumTransitions() != r.L.NumTransitions() ||
			back.Initial() != r.L.Initial() ||
			back.NumLabels() != r.L.NumLabels() {
			return false
		}
		for id := 0; id < r.L.NumLabels(); id++ {
			if back.LabelName(id) != r.L.LabelName(id) {
				return false
			}
		}
		ea, eb := edgeMultiset(r.L), edgeMultiset(back)
		if len(ea) != len(eb) {
			return false
		}
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickFreezeRowsSortedAndComplete(t *testing.T) {
	prop := func(r randLTS) bool {
		f := r.L.Freeze()
		totalOut, totalIn := 0, 0
		for s := 0; s < f.NumStates(); s++ {
			labs, dsts := f.Out(State(s))
			totalOut += len(labs)
			for i := 1; i < len(labs); i++ {
				if labs[i] < labs[i-1] ||
					(labs[i] == labs[i-1] && dsts[i] < dsts[i-1]) {
					return false // row not (label, dst)-sorted
				}
			}
			if f.OutDegree(State(s)) != r.L.OutDegree(State(s)) {
				return false
			}
			ilabs, isrcs := f.In(State(s))
			totalIn += len(ilabs)
			for i := 1; i < len(ilabs); i++ {
				if ilabs[i] < ilabs[i-1] ||
					(ilabs[i] == ilabs[i-1] && isrcs[i] < isrcs[i-1]) {
					return false
				}
			}
		}
		return totalOut == r.L.NumTransitions() && totalIn == r.L.NumTransitions()
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickFrozenSuccMatchesSuccessors(t *testing.T) {
	prop := func(r randLTS) bool {
		f := r.L.Freeze()
		for s := 0; s < r.L.NumStates(); s++ {
			for id := 0; id < r.L.NumLabels(); id++ {
				want := r.L.Successors(State(s), id)
				got := f.Succ(State(s), id)
				// Succ keeps duplicates; dedupe for comparison.
				var ded []State
				for i, d := range got {
					if i == 0 || d != got[i-1] {
						ded = append(ded, State(d))
					}
				}
				if len(ded) != len(want) {
					return false
				}
				for i := range ded {
					if ded[i] != want[i] {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := quickCfg()
	cfg.MaxCount = 25
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestFreezeIsSnapshot(t *testing.T) {
	l := New("snap")
	l.AddStates(2)
	l.AddTransition(0, "a", 1)
	f := l.Freeze()
	l.AddTransition(1, "b", 0)
	l.AddState()
	if f.NumStates() != 2 || f.NumTransitions() != 1 {
		t.Fatalf("frozen snapshot mutated: %d states, %d transitions",
			f.NumStates(), f.NumTransitions())
	}
}

func TestFrozenTauID(t *testing.T) {
	l := New("tau")
	l.AddStates(2)
	l.AddTransition(0, Tau, 1)
	if got := l.Freeze().TauID(); got != l.LookupLabel(Tau) {
		t.Fatalf("TauID = %d", got)
	}
	l2 := New("notau")
	l2.AddStates(1)
	if got := l2.Freeze().TauID(); got != -1 {
		t.Fatalf("TauID on tau-free LTS = %d, want -1", got)
	}
}

func BenchmarkFreeze100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := Random(rng, RandomConfig{States: 100_000, Labels: 8, Density: 4, Connect: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Freeze()
	}
}
