package phasetype

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randErlang generates random Erlang parameters.
type randErlang struct {
	K    int
	Rate float64
}

func (randErlang) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randErlang{
		K:    1 + rng.Intn(12),
		Rate: 0.25 + 8*rng.Float64(),
	})
}

func qcfg() *quick.Config {
	return &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(99))}
}

func TestQuickErlangMoments(t *testing.T) {
	prop := func(p randErlang) bool {
		d := Erlang(p.K, p.Rate)
		k, r := float64(p.K), p.Rate
		return math.Abs(d.Mean()-k/r) < 1e-7*(k/r) &&
			math.Abs(d.Variance()-k/(r*r)) < 1e-6*(k/(r*r)) &&
			math.Abs(d.SCV()-1/k) < 1e-6
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickCDFMonotoneAndBounded(t *testing.T) {
	prop := func(p randErlang) bool {
		d := Erlang(p.K, p.Rate)
		mean := d.Mean()
		prev := 0.0
		for i := 1; i <= 10; i++ {
			f := d.CDF(mean * float64(i) / 3)
			if f < prev-1e-9 || f < 0 || f > 1 {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickCDFMedianNearMean(t *testing.T) {
	// For Erlang, CDF(mean) is in (0.4, 0.7) for all k >= 1.
	prop := func(p randErlang) bool {
		d := Erlang(p.K, p.Rate)
		f := d.CDF(d.Mean())
		return f > 0.4 && f < 0.7
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickMomentMatchMeanExact(t *testing.T) {
	prop := func(meanRaw, scvRaw uint16) bool {
		mean := 0.05 + float64(meanRaw%1000)/100
		scv := 0.05 + float64(scvRaw%500)/100
		d, err := MomentMatch2(mean, scv)
		if err != nil {
			return false
		}
		if math.Abs(d.Mean()-mean) > 1e-6*mean {
			return false
		}
		// SCV: exact above 1 (Coxian), bounded from below by the
		// Erlang grid when below 1.
		if scv >= 1 {
			return math.Abs(d.SCV()-scv) < 1e-4*scv
		}
		return d.SCV() <= scv+1e-9
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickHypoValidAndOrdered(t *testing.T) {
	// A hypoexponential is always valid and has SCV in (0, 1].
	prop := func(a, b, c uint8) bool {
		rates := []float64{
			0.2 + float64(a%40)/4,
			0.2 + float64(b%40)/4,
			0.2 + float64(c%40)/4,
		}
		d := Hypo(rates...)
		if err := d.Validate(); err != nil {
			return false
		}
		scv := d.SCV()
		return scv > 0 && scv <= 1+1e-9
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickFixedDelayMeanExact(t *testing.T) {
	prop := func(p randErlang) bool {
		delay := 0.1 + p.Rate // reuse as a random positive delay
		d, err := FitFixedDelay(delay, p.K)
		if err != nil {
			return false
		}
		return math.Abs(d.Mean()-delay) < 1e-7*delay
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}
