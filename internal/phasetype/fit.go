package phasetype

import (
	"fmt"
	"math"
)

// FitFixedDelay approximates a deterministic delay of duration d by an
// Erlang distribution with k phases and rate k/d. The mean is exact; the
// squared coefficient of variation is 1/k, so accuracy improves — and the
// state space grows — linearly in k. This is the space–accuracy trade-off
// for fixed-time delays highlighted in the Multival paper's conclusion.
func FitFixedDelay(d float64, k int) (*Distribution, error) {
	if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return nil, fmt.Errorf("phasetype: invalid delay %v", d)
	}
	if k < 1 {
		return nil, fmt.Errorf("phasetype: need at least one phase, got %d", k)
	}
	e := Erlang(k, float64(k)/d)
	e.Name = fmt.Sprintf("fixed(%g)~erlang-%d", d, k)
	return e, nil
}

// FixedDelayError quantifies the approximation quality of FitFixedDelay:
// the squared coefficient of variation (0 for a true deterministic delay)
// and the Wasserstein-1 distance between the Erlang distribution and the
// point mass at d (the integral of |CDF_Erlang - CDF_step|, estimated by
// the trapezoid rule on 0..4d). The supremum CDF distance is NOT a useful
// metric here: it converges to 1/2 at the jump point for every k.
func FixedDelayError(d float64, k int) (scv, wasserstein float64, err error) {
	dist, err := FitFixedDelay(d, k)
	if err != nil {
		return 0, 0, err
	}
	scv = dist.SCV()
	const steps = 800
	h := 4 * d / steps
	prev := 0.0
	total := 0.0
	for i := 0; i <= steps; i++ {
		t := float64(i) * h
		f := dist.CDF(t)
		var step float64
		if t >= d {
			step = 1
		}
		cur := math.Abs(f - step)
		if i > 0 {
			total += (prev + cur) / 2 * h
		}
		prev = cur
	}
	return scv, total, nil
}

// SampleStats summarizes an empirical sample used for fitting.
type SampleStats struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1) estimator; 0 for a single sample
	SCV      float64 // squared coefficient of variation, Variance/Mean^2
}

// FitSample fits a phase-type distribution to an empirical sample of
// positive durations by two-moment matching: it estimates the sample mean
// and squared coefficient of variation and delegates to MomentMatch2. A
// single-sample (or zero-variance) input is treated as a deterministic
// delay and fitted per FitFixedDelay with a default of 8 Erlang phases.
// The returned stats expose the estimates so callers can re-derive or
// sweep around the fitted rates.
func FitSample(samples []float64) (*Distribution, SampleStats, error) {
	var st SampleStats
	if len(samples) == 0 {
		return nil, st, fmt.Errorf("phasetype: empty sample")
	}
	sum := 0.0
	for i, s := range samples {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, st, fmt.Errorf("phasetype: sample %d is %v; durations must be positive and finite", i, s)
		}
		sum += s
	}
	st.N = len(samples)
	st.Mean = sum / float64(st.N)
	if st.N > 1 {
		ss := 0.0
		for _, s := range samples {
			d := s - st.Mean
			ss += d * d
		}
		st.Variance = ss / float64(st.N-1)
	}
	st.SCV = st.Variance / (st.Mean * st.Mean)
	if st.SCV < 1e-12 {
		const k = 8
		d, err := FitFixedDelay(st.Mean, k)
		return d, st, err
	}
	d, err := MomentMatch2(st.Mean, st.SCV)
	return d, st, err
}

// MomentMatch2 builds a phase-type distribution matching a mean and a
// squared coefficient of variation:
//
//   - scv == 1: exponential;
//   - scv  < 1: Erlang-like hypoexponential (k = ceil(1/scv) phases; the
//     mean is matched exactly, the SCV approximated by 1/k from below);
//   - scv  > 1: two-phase Coxian (Marie's method), matching both moments
//     exactly while keeping a deterministic entry phase, so the result is
//     always usable as an IMC delay process.
func MomentMatch2(mean, scv float64) (*Distribution, error) {
	if mean <= 0 || math.IsNaN(mean) {
		return nil, fmt.Errorf("phasetype: invalid mean %v", mean)
	}
	if scv <= 0 || math.IsNaN(scv) {
		return nil, fmt.Errorf("phasetype: invalid scv %v", scv)
	}
	switch {
	case math.Abs(scv-1) < 1e-9:
		return Exp(1 / mean), nil
	case scv < 1:
		k := int(math.Ceil(1 / scv))
		// Erlang-k with rate k/mean has scv 1/k <= requested scv; exact
		// two-moment matching below 1 needs a mixed Erlang — we accept
		// the standard Erlang approximation and record it in the name.
		d := Erlang(k, float64(k)/mean)
		d.Name = fmt.Sprintf("match(mean=%g,scv=%g)~erlang-%d", mean, scv, k)
		return d, nil
	default:
		// Two-phase Coxian (Marie 1980): mu1 = 2/mean, continuation
		// p = 1/(2*scv), mu2 = p*mu1 ... standard closed form:
		mu1 := 2 / mean
		p := 1 / (2 * scv)
		mu2 := mu1 * p
		d, err := Coxian([]float64{mu1, mu2}, []float64{p, 0})
		if err != nil {
			return nil, err
		}
		d.Name = fmt.Sprintf("match(mean=%g,scv=%g)~cox2", mean, scv)
		return d, nil
	}
}
