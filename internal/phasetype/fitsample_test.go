package phasetype

import (
	"math"
	"testing"
)

func TestFitSampleMatchesMoments(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		scvHigh bool // whether the empirical SCV exceeds 1 (Coxian branch)
	}{
		{"low-variance", []float64{9, 10, 11, 10, 10, 9.5, 10.5}, false},
		{"high-variance", []float64{0.1, 0.2, 0.1, 5, 0.3, 8, 0.2}, true},
	}
	for _, c := range cases {
		d, st, err := FitSample(c.samples)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if st.N != len(c.samples) {
			t.Errorf("%s: N = %d, want %d", c.name, st.N, len(c.samples))
		}
		if (st.SCV > 1) != c.scvHigh {
			t.Errorf("%s: empirical SCV %v on unexpected side of 1", c.name, st.SCV)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: fitted distribution invalid: %v", c.name, err)
		}
		if got := d.Mean(); math.Abs(got-st.Mean) > 1e-9*st.Mean {
			t.Errorf("%s: fitted mean %v, sample mean %v", c.name, got, st.Mean)
		}
		// The Coxian branch matches SCV exactly; the Erlang branch only
		// from below (scv_fit = 1/k <= scv_sample).
		if c.scvHigh {
			if got := d.SCV(); math.Abs(got-st.SCV) > 1e-6 {
				t.Errorf("%s: fitted SCV %v, sample SCV %v", c.name, got, st.SCV)
			}
		} else if got := d.SCV(); got > st.SCV+1e-9 {
			t.Errorf("%s: fitted SCV %v exceeds sample SCV %v", c.name, got, st.SCV)
		}
	}
}

func TestFitSampleDeterministic(t *testing.T) {
	// Identical samples: zero variance, treated as a fixed delay.
	d, st, err := FitSample([]float64{2.5, 2.5, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Variance != 0 || st.SCV != 0 {
		t.Fatalf("stats = %+v, want zero variance", st)
	}
	if got := d.Mean(); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("mean %v, want 2.5", got)
	}
	if k := d.NumPhases(); k != 8 {
		t.Errorf("phases = %d, want Erlang-8 fixed-delay default", k)
	}
	// Single sample behaves the same way.
	d1, _, err := FitSample([]float64{2.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := d1.Mean(); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("single-sample mean %v, want 2.5", got)
	}
}

func TestFitSampleErrors(t *testing.T) {
	for _, samples := range [][]float64{
		nil,
		{},
		{1, -2, 3},
		{0},
		{1, math.NaN()},
		{1, math.Inf(1)},
	} {
		if _, _, err := FitSample(samples); err == nil {
			t.Errorf("FitSample(%v) unexpectedly succeeded", samples)
		}
	}
}
