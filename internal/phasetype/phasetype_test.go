package phasetype

import (
	"math"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g", what, got, want)
	}
}

func TestExpMoments(t *testing.T) {
	d := Exp(2)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	almost(t, d.Mean(), 0.5, 1e-10, "mean")
	almost(t, d.Variance(), 0.25, 1e-10, "variance")
	almost(t, d.SCV(), 1, 1e-9, "scv")
}

func TestErlangMoments(t *testing.T) {
	for _, k := range []int{1, 2, 5, 16} {
		rate := 3.0
		d := Erlang(k, rate)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		almost(t, d.Mean(), float64(k)/rate, 1e-9, "Erlang mean")
		almost(t, d.Variance(), float64(k)/(rate*rate), 1e-8, "Erlang var")
		almost(t, d.SCV(), 1/float64(k), 1e-8, "Erlang scv")
		if d.EntryPhase() != 0 {
			t.Error("Erlang entry phase should be 0")
		}
	}
}

func TestHypoMoments(t *testing.T) {
	d := Hypo(1, 2, 4)
	almost(t, d.Mean(), 1+0.5+0.25, 1e-9, "Hypo mean")
	almost(t, d.Variance(), 1+0.25+1.0/16, 1e-8, "Hypo var")
}

func TestHyperExpMoments(t *testing.T) {
	d, err := HyperExp([]float64{0.4, 0.6}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.4/1 + 0.6/3
	almost(t, d.Mean(), wantMean, 1e-9, "Hyper mean")
	// E[T^2] = 0.4*2/1 + 0.6*2/9
	wantM2 := 0.4*2 + 0.6*2.0/9
	almost(t, d.Variance(), wantM2-wantMean*wantMean, 1e-8, "Hyper var")
	if d.SCV() <= 1 {
		t.Error("hyperexponential must have scv > 1")
	}
	if d.EntryPhase() != -1 {
		t.Error("hyperexp must not report a deterministic entry")
	}
}

func TestCoxianMoments(t *testing.T) {
	d, err := Coxian([]float64{2, 4}, []float64{0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	// With prob 0.5 absorb after Exp(2); else Exp(2)+Exp(4).
	wantMean := 0.5*(1.0/2) + 0.5*(1.0/2+1.0/4)
	almost(t, d.Mean(), wantMean, 1e-9, "Coxian mean")
}

func TestCDFExponential(t *testing.T) {
	d := Exp(2)
	for _, tm := range []float64{0.1, 0.5, 1, 2} {
		almost(t, d.CDF(tm), 1-math.Exp(-2*tm), 1e-8, "Exp CDF")
	}
	if d.CDF(0) != 0 || d.CDF(-1) != 0 {
		t.Error("CDF must be 0 at t<=0")
	}
}

func TestCDFErlangMedianOrdering(t *testing.T) {
	// Erlang CDFs around the mean get steeper with k.
	d := 1.0
	prev := 0.0
	for _, k := range []int{1, 2, 8, 32} {
		e, err := FitFixedDelay(d, k)
		if err != nil {
			t.Fatal(err)
		}
		// P(T <= 0.5d) decreases with k (less mass far below the mean).
		p := e.CDF(0.5)
		if k > 1 && p >= prev {
			t.Errorf("k=%d: CDF(0.5) = %g not decreasing (prev %g)", k, p, prev)
		}
		prev = p
	}
}

func TestFitFixedDelay(t *testing.T) {
	d, err := FitFixedDelay(2.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, d.Mean(), 2.5, 1e-9, "fixed-delay mean")
	almost(t, d.SCV(), 0.125, 1e-8, "fixed-delay scv")
	if _, err := FitFixedDelay(-1, 4); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := FitFixedDelay(1, 0); err == nil {
		t.Error("zero phases accepted")
	}
}

func TestFixedDelayErrorMonotone(t *testing.T) {
	// The space-accuracy trade-off: both error measures shrink as k grows.
	var prevSCV, prevW float64 = math.Inf(1), math.Inf(1)
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		scv, w, err := FixedDelayError(1.0, k)
		if err != nil {
			t.Fatal(err)
		}
		if scv >= prevSCV {
			t.Errorf("k=%d: scv %g did not decrease", k, scv)
		}
		if w >= prevW {
			t.Errorf("k=%d: Wasserstein error %g did not decrease", k, w)
		}
		prevSCV, prevW = scv, w
	}
	// And the Wasserstein distance roughly matches the closed form
	// E|T-d| ~ sqrt(2/(pi k)) * d for large k.
	_, w32, err := FixedDelayError(1.0, 32)
	if err != nil {
		t.Fatal(err)
	}
	approx := math.Sqrt(2 / (math.Pi * 32))
	if w32 < approx/2 || w32 > approx*2 {
		t.Errorf("Wasserstein(k=32) = %g, expected near %g", w32, approx)
	}
}

func TestMomentMatch2(t *testing.T) {
	// scv == 1 -> exponential.
	d, err := MomentMatch2(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, d.Mean(), 2, 1e-9, "match mean (exp)")
	if d.NumPhases() != 1 {
		t.Error("scv=1 should be a single phase")
	}
	// scv < 1 -> Erlang with scv 1/k <= requested.
	d, err = MomentMatch2(3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, d.Mean(), 3, 1e-8, "match mean (erlang)")
	if got := d.SCV(); got > 0.3+1e-9 {
		t.Errorf("scv = %g exceeds request", got)
	}
	// scv > 1 -> Coxian matching both moments exactly.
	d, err = MomentMatch2(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, d.Mean(), 2, 1e-8, "match mean (cox)")
	almost(t, d.SCV(), 4, 1e-6, "match scv (cox)")
	if d.EntryPhase() < 0 {
		t.Error("Coxian must have deterministic entry")
	}
	// Errors.
	if _, err := MomentMatch2(-1, 1); err == nil {
		t.Error("negative mean accepted")
	}
	if _, err := MomentMatch2(1, 0); err == nil {
		t.Error("zero scv accepted")
	}
}

func TestValidateCatchesBadShapes(t *testing.T) {
	bad := []*Distribution{
		{Alpha: nil},
		{Alpha: []float64{0.5}, Rates: [][]float64{{0}}, Exit: []float64{1}},     // alpha sum
		{Alpha: []float64{1}, Rates: [][]float64{{1}}, Exit: []float64{1}},       // diagonal
		{Alpha: []float64{1}, Rates: [][]float64{{0}}, Exit: []float64{-1}},      // negative exit
		{Alpha: []float64{1, 0}, Rates: [][]float64{{0}}, Exit: []float64{1, 1}}, // dims
		{Alpha: []float64{1}, Rates: [][]float64{{0}}, Exit: []float64{0}},       // dead phase
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid distribution", i)
		}
	}
}

func TestErlangPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Erlang(0) should panic")
		}
	}()
	Erlang(0, 1)
}

func TestCDFLargeRate(t *testing.T) {
	// Exercise the windowed Poisson path with a big uniformization q.
	d := Erlang(4, 400)
	got := d.CDF(0.01) // mean
	if got <= 0.3 || got >= 0.8 {
		t.Errorf("CDF at mean = %g, expected around 0.56", got)
	}
}

func TestHyperExpValidation(t *testing.T) {
	if _, err := HyperExp([]float64{1}, nil); err == nil {
		t.Error("mismatched dims accepted")
	}
	if _, err := HyperExp([]float64{0.7, 0.7}, []float64{1, 1}); err == nil {
		t.Error("non-normalized probs accepted")
	}
}

func TestCoxianValidation(t *testing.T) {
	if _, err := Coxian([]float64{1}, []float64{}); err == nil {
		t.Error("mismatched dims accepted")
	}
	if _, err := Coxian([]float64{1, 1}, []float64{2, 0}); err == nil {
		t.Error("continuation > 1 accepted")
	}
}
