// Package phasetype implements phase-type (PH) distributions: absorption
// times of small continuous-time Markov chains. In the Multival
// performance flow every delay of the functional model is instantiated by
// such a distribution (step 3 of the decoration process described in the
// paper), and fixed-time delays are approximated by Erlang distributions,
// exposing the space–accuracy trade-off discussed in the paper's
// conclusion.
package phasetype

import (
	"fmt"
	"math"
)

// Distribution is a phase-type distribution given by the initial
// distribution Alpha over transient phases, the inter-phase rate matrix
// Rates (Rates[i][j] is the rate from phase i to phase j, i != j), and the
// absorption rates Exit.
type Distribution struct {
	Name  string
	Alpha []float64
	Rates [][]float64
	Exit  []float64
}

// NumPhases returns the number of transient phases.
func (d *Distribution) NumPhases() int { return len(d.Alpha) }

// Validate checks structural consistency: matching dimensions,
// non-negative rates, Alpha summing to one, and every phase able to reach
// absorption.
func (d *Distribution) Validate() error {
	k := len(d.Alpha)
	if k == 0 {
		return fmt.Errorf("phasetype: no phases")
	}
	if len(d.Rates) != k || len(d.Exit) != k {
		return fmt.Errorf("phasetype: dimension mismatch")
	}
	sum := 0.0
	for _, a := range d.Alpha {
		if a < 0 || math.IsNaN(a) {
			return fmt.Errorf("phasetype: invalid initial probability %v", a)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("phasetype: initial distribution sums to %v", sum)
	}
	for i := 0; i < k; i++ {
		if len(d.Rates[i]) != k {
			return fmt.Errorf("phasetype: rate row %d has wrong length", i)
		}
		if d.Exit[i] < 0 {
			return fmt.Errorf("phasetype: negative exit rate at phase %d", i)
		}
		for j := 0; j < k; j++ {
			if i == j && d.Rates[i][j] != 0 {
				return fmt.Errorf("phasetype: nonzero diagonal at %d", i)
			}
			if d.Rates[i][j] < 0 {
				return fmt.Errorf("phasetype: negative rate %d->%d", i, j)
			}
		}
	}
	// Absorption reachable from every phase with positive alpha-mass
	// support (in fact require from every phase, to catch dead phases).
	reach := make([]bool, k)
	for i := 0; i < k; i++ {
		if d.Exit[i] > 0 {
			reach[i] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < k; i++ {
			if reach[i] {
				continue
			}
			for j := 0; j < k; j++ {
				if d.Rates[i][j] > 0 && reach[j] {
					reach[i] = true
					changed = true
					break
				}
			}
		}
	}
	for i, ok := range reach {
		if !ok {
			return fmt.Errorf("phasetype: phase %d cannot reach absorption", i)
		}
	}
	return nil
}

// EntryPhase returns the index of the unique entry phase if Alpha is a
// unit vector, and -1 otherwise. Delay processes in the IMC flow require a
// deterministic entry.
func (d *Distribution) EntryPhase() int {
	entry := -1
	for i, a := range d.Alpha {
		switch {
		case a == 0:
		case a == 1 && entry < 0:
			entry = i
		default:
			return -1
		}
	}
	return entry
}

// ---- constructors ----

// Exp is the exponential distribution with the given rate.
func Exp(rate float64) *Distribution {
	return &Distribution{
		Name:  fmt.Sprintf("exp(%g)", rate),
		Alpha: []float64{1},
		Rates: [][]float64{{0}},
		Exit:  []float64{rate},
	}
}

// Erlang is the k-phase Erlang distribution with per-phase rate `rate`
// (mean k/rate, squared coefficient of variation 1/k).
func Erlang(k int, rate float64) *Distribution {
	if k < 1 {
		panic("phasetype: Erlang needs k >= 1")
	}
	d := &Distribution{
		Name:  fmt.Sprintf("erlang(%d,%g)", k, rate),
		Alpha: make([]float64, k),
		Rates: make([][]float64, k),
		Exit:  make([]float64, k),
	}
	d.Alpha[0] = 1
	for i := 0; i < k; i++ {
		d.Rates[i] = make([]float64, k)
		if i < k-1 {
			d.Rates[i][i+1] = rate
		} else {
			d.Exit[i] = rate
		}
	}
	return d
}

// Hypo is the hypoexponential distribution: a series of exponential
// phases with the given (possibly distinct) rates.
func Hypo(rates ...float64) *Distribution {
	k := len(rates)
	if k == 0 {
		panic("phasetype: Hypo needs at least one rate")
	}
	d := &Distribution{
		Name:  fmt.Sprintf("hypo%v", rates),
		Alpha: make([]float64, k),
		Rates: make([][]float64, k),
		Exit:  make([]float64, k),
	}
	d.Alpha[0] = 1
	for i := range rates {
		d.Rates[i] = make([]float64, k)
		if i < k-1 {
			d.Rates[i][i+1] = rates[i]
		} else {
			d.Exit[i] = rates[i]
		}
	}
	return d
}

// HyperExp is the hyperexponential distribution: with probability probs[i]
// the delay is exponential with rates[i]. Its Alpha has several entries,
// so it cannot be used directly as an IMC delay process (use Coxian
// moment matching instead).
func HyperExp(probs, rates []float64) (*Distribution, error) {
	if len(probs) != len(rates) || len(probs) == 0 {
		return nil, fmt.Errorf("phasetype: HyperExp needs matching nonempty probs/rates")
	}
	k := len(probs)
	d := &Distribution{
		Name:  fmt.Sprintf("hyper%v%v", probs, rates),
		Alpha: append([]float64(nil), probs...),
		Rates: make([][]float64, k),
		Exit:  append([]float64(nil), rates...),
	}
	for i := range d.Rates {
		d.Rates[i] = make([]float64, k)
	}
	return d, d.Validate()
}

// Coxian builds a Coxian distribution: phase i exits to absorption with
// rate rates[i]*(1-conts[i]) and continues to phase i+1 with rate
// rates[i]*conts[i]; conts[k-1] is ignored (forced to 0).
func Coxian(rates, conts []float64) (*Distribution, error) {
	k := len(rates)
	if k == 0 || len(conts) != k {
		return nil, fmt.Errorf("phasetype: Coxian needs matching nonempty rates/conts")
	}
	d := &Distribution{
		Name:  fmt.Sprintf("cox%v%v", rates, conts),
		Alpha: make([]float64, k),
		Rates: make([][]float64, k),
		Exit:  make([]float64, k),
	}
	d.Alpha[0] = 1
	for i := 0; i < k; i++ {
		d.Rates[i] = make([]float64, k)
		p := conts[i]
		if i == k-1 {
			p = 0
		}
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("phasetype: continuation probability %v out of [0,1]", p)
		}
		if i < k-1 {
			d.Rates[i][i+1] = rates[i] * p
		}
		d.Exit[i] = rates[i] * (1 - p)
	}
	return d, d.Validate()
}

// ---- moments ----

// Moments returns the first two moments (E[T], E[T^2]) by solving the
// standard linear systems m1 = -S^-1 1 and m2 = 2 S^-2 1 via Gauss-Seidel
// on the small phase matrix (dense direct elimination, the matrices are
// tiny).
func (d *Distribution) Moments() (m1, m2 float64, err error) {
	if err := d.Validate(); err != nil {
		return 0, 0, err
	}
	k := d.NumPhases()
	// h1[i] = expected absorption time from phase i:
	//   h1 = (1 + sum_j R[i][j] h1[j]) / totalRate(i)
	total := make([]float64, k)
	for i := 0; i < k; i++ {
		total[i] = d.Exit[i]
		for j := 0; j < k; j++ {
			total[i] += d.Rates[i][j]
		}
		if total[i] <= 0 {
			return 0, 0, fmt.Errorf("phasetype: phase %d has no outgoing rate", i)
		}
	}
	h1 := solveHitting(d, total, func(i int, h []float64) float64 {
		s := 1.0
		for j := 0; j < k; j++ {
			s += d.Rates[i][j] * h[j]
		}
		return s / total[i]
	})
	// Second moment: g[i] = E[T_i^2] satisfies
	//   g_i = 2/total_i * h1_i ... use the recursive formula
	//   E[T^2 from i] = 2/total_i^2 + 2*h1rest/total_i + sum_j P_ij E[T^2 from j]
	// Derive via conditioning on the first jump:
	//   T_i = X_i + T_next; E[T_i^2] = E[X^2] + 2E[X]E[T_next] + E[T_next^2]
	//   E[X^2] = 2/total_i^2, E[X] = 1/total_i.
	g := solveHitting(d, total, func(i int, g []float64) float64 {
		eNext1 := 0.0 // E[T_next]
		eNext2 := 0.0 // E[T_next^2]
		for j := 0; j < k; j++ {
			p := d.Rates[i][j] / total[i]
			eNext1 += p * h1[j]
			eNext2 += p * g[j]
		}
		return 2/(total[i]*total[i]) + 2*eNext1/total[i] + eNext2
	})
	for i := 0; i < k; i++ {
		m1 += d.Alpha[i] * h1[i]
		m2 += d.Alpha[i] * g[i]
	}
	return m1, m2, nil
}

// solveHitting iterates a Gauss–Seidel update until convergence; the
// phase graphs are tiny and substochastic, so convergence is fast.
func solveHitting(d *Distribution, total []float64, update func(i int, h []float64) float64) []float64 {
	k := d.NumPhases()
	h := make([]float64, k)
	for iter := 0; iter < 1_000_000; iter++ {
		maxDelta := 0.0
		for i := 0; i < k; i++ {
			next := update(i, h)
			if delta := math.Abs(next - h[i]); delta > maxDelta {
				maxDelta = delta
			}
			h[i] = next
		}
		if maxDelta < 1e-14 {
			break
		}
	}
	return h
}

// Mean returns E[T].
func (d *Distribution) Mean() float64 {
	m1, _, err := d.Moments()
	if err != nil {
		return math.NaN()
	}
	return m1
}

// Variance returns Var[T].
func (d *Distribution) Variance() float64 {
	m1, m2, err := d.Moments()
	if err != nil {
		return math.NaN()
	}
	return m2 - m1*m1
}

// SCV returns the squared coefficient of variation Var/Mean^2.
func (d *Distribution) SCV() float64 {
	m1, m2, err := d.Moments()
	if err != nil || m1 == 0 {
		return math.NaN()
	}
	return (m2 - m1*m1) / (m1 * m1)
}

// CDF evaluates P(T <= t) by uniformization over the phase chain plus an
// absorbing state.
func (d *Distribution) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	k := d.NumPhases()
	// Uniformization constant.
	lambda := 0.0
	total := make([]float64, k)
	for i := 0; i < k; i++ {
		total[i] = d.Exit[i]
		for j := 0; j < k; j++ {
			total[i] += d.Rates[i][j]
		}
		if total[i] > lambda {
			lambda = total[i]
		}
	}
	lambda *= 1.02
	q := lambda * t
	cur := append([]float64(nil), d.Alpha...)
	absorbed := 0.0
	result := 0.0
	// Poisson weights forward; for moderate q this is stable. For large
	// q fall back to windowed weights.
	weights, k0 := poissonWeights(q)
	next := make([]float64, k)
	maxK := k0 + len(weights) - 1
	for step := 0; step <= maxK; step++ {
		if step >= k0 {
			result += weights[step-k0] * absorbed
		}
		if step == maxK {
			break
		}
		for i := 0; i < k; i++ {
			next[i] = cur[i] * (1 - total[i]/lambda)
		}
		for i := 0; i < k; i++ {
			if cur[i] == 0 {
				continue
			}
			for j := 0; j < k; j++ {
				if d.Rates[i][j] > 0 {
					next[j] += cur[i] * d.Rates[i][j] / lambda
				}
			}
			absorbed += cur[i] * d.Exit[i] / lambda
		}
		copy(cur, next)
	}
	if result < 0 {
		return 0
	}
	if result > 1 {
		return 1
	}
	return result
}

func poissonWeights(q float64) ([]float64, int) {
	mode := int(math.Floor(q))
	logPmf := func(kk int) float64 {
		lg, _ := math.Lgamma(float64(kk + 1))
		return -q + float64(kk)*math.Log(q) - lg
	}
	if q == 0 {
		return []float64{1}, 0
	}
	lo, hi := mode, mode
	vals := map[int]float64{mode: math.Exp(logPmf(mode))}
	mass := vals[mode]
	for mass < 1-1e-12 && hi-lo < 4_000_000 {
		if lo > 0 {
			lo--
			v := math.Exp(logPmf(lo))
			vals[lo] = v
			mass += v
		}
		hi++
		v := math.Exp(logPmf(hi))
		vals[hi] = v
		mass += v
	}
	w := make([]float64, hi-lo+1)
	total := 0.0
	for kk := lo; kk <= hi; kk++ {
		w[kk-lo] = vals[kk]
		total += vals[kk]
	}
	for i := range w {
		w[i] /= total
	}
	return w, lo
}
