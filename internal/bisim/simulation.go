package bisim

import (
	"multival/internal/lts"
)

// Simulates reports whether the initial state of spec simulates the
// initial state of impl (strong simulation preorder): every transition of
// impl can be matched by spec, recursively. Simulation is coarser than
// strong bisimulation and finer than trace inclusion; it is the natural
// check for "the implementation only does what the specification
// allows". Computed by greatest-fixpoint refinement of the full relation.
func Simulates(spec, impl *lts.LTS) bool {
	if impl.NumStates() == 0 {
		return true
	}
	if spec.NumStates() == 0 {
		return impl.NumTransitions() == 0
	}
	// rel[i][s] = "spec state s simulates impl state i" (candidate).
	ni, ns := impl.NumStates(), spec.NumStates()
	rel := make([][]bool, ni)
	for i := range rel {
		rel[i] = make([]bool, ns)
		for s := range rel[i] {
			rel[i][s] = true
		}
	}
	// Refine: drop (i,s) when some move of i has no matching move of s
	// into the relation.
	for changed := true; changed; {
		changed = false
		for i := 0; i < ni; i++ {
			for s := 0; s < ns; s++ {
				if !rel[i][s] {
					continue
				}
				if !simStep(impl, spec, lts.State(i), lts.State(s), rel) {
					rel[i][s] = false
					changed = true
				}
			}
		}
	}
	return rel[impl.Initial()][spec.Initial()]
}

// simStep checks one refinement condition: every outgoing transition of
// impl state i is matched by some equally-labeled transition of spec
// state s whose target pair is still in the candidate relation.
func simStep(impl, spec *lts.LTS, i, s lts.State, rel [][]bool) bool {
	ok := true
	impl.EachOutgoing(i, func(t lts.Transition) {
		if !ok {
			return
		}
		label := impl.LabelName(t.Label)
		id := spec.LookupLabel(label)
		if id < 0 {
			ok = false
			return
		}
		matched := false
		spec.EachOutgoing(s, func(u lts.Transition) {
			if matched || u.Label != id {
				return
			}
			if rel[t.Dst][u.Dst] {
				matched = true
			}
		})
		if !matched {
			ok = false
		}
	})
	return ok
}

// SimulationEquivalent reports mutual simulation (coarser than strong
// bisimulation, finer than trace equivalence).
func SimulationEquivalent(a, b *lts.LTS) bool {
	return Simulates(a, b) && Simulates(b, a)
}
