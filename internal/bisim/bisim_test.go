package bisim

import (
	"math/rand"
	"testing"

	"multival/internal/lts"
)

// build constructs an LTS from a transition list over implicit states.
func build(n int, init lts.State, edges [][3]interface{}) *lts.LTS {
	l := lts.New("test")
	l.AddStates(n)
	for _, e := range edges {
		l.AddTransition(lts.State(e[0].(int)), e[1].(string), lts.State(e[2].(int)))
	}
	l.SetInitial(init)
	return l
}

// abc builds a.(b+c): 0 -a-> 1, 1 -b-> 2, 1 -c-> 3.
func abc() *lts.LTS {
	return build(4, 0, [][3]interface{}{
		{0, "a", 1}, {1, "b", 2}, {1, "c", 3},
	})
}

// abac builds a.b + a.c: 0 -a-> 1, 0 -a-> 2, 1 -b-> 3, 2 -c-> 4.
func abac() *lts.LTS {
	return build(5, 0, [][3]interface{}{
		{0, "a", 1}, {0, "a", 2}, {1, "b", 3}, {2, "c", 4},
	})
}

func TestClassicStrongVsTrace(t *testing.T) {
	p, q := abc(), abac()
	if Equivalent(p, q, Strong) {
		t.Error("a.(b+c) and a.b+a.c must NOT be strongly bisimilar")
	}
	if Equivalent(p, q, Branching) {
		t.Error("a.(b+c) and a.b+a.c must NOT be branching bisimilar")
	}
	if !Equivalent(p, q, Trace) {
		t.Error("a.(b+c) and a.b+a.c must be trace equivalent")
	}
}

func TestStrongMergesDuplicates(t *testing.T) {
	// Two parallel a-branches into identical b-suffixes collapse.
	l := build(5, 0, [][3]interface{}{
		{0, "a", 1}, {0, "a", 2}, {1, "b", 3}, {2, "b", 4},
	})
	q, _ := Minimize(l, Strong)
	if q.NumStates() != 3 {
		t.Fatalf("minimized to %d states, want 3\n%s", q.NumStates(), q.Dump())
	}
	if !Equivalent(l, q, Strong) {
		t.Fatal("quotient not strongly equivalent to original")
	}
}

func TestBranchingAbstractsInertTau(t *testing.T) {
	// 0 -tau-> 1 -a-> 2 is branching equivalent to 0 -a-> 1.
	p := build(3, 0, [][3]interface{}{{0, lts.Tau, 1}, {1, "a", 2}})
	q := build(2, 0, [][3]interface{}{{0, "a", 1}})
	if !Equivalent(p, q, Branching) {
		t.Error("inert tau prefix must be branching-invisible")
	}
	if Equivalent(p, q, Strong) {
		t.Error("tau prefix must be visible to strong bisimulation")
	}
	m, _ := Minimize(p, Branching)
	if m.NumStates() != 2 {
		t.Fatalf("branching quotient has %d states, want 2\n%s", m.NumStates(), m.Dump())
	}
}

func TestBranchingNonInertTauKept(t *testing.T) {
	// 0 -tau-> 1 where 1 offers b, but 0 also offers a: the tau is NOT
	// inert (it discards the a option), so systems differ.
	p := build(4, 0, [][3]interface{}{
		{0, "a", 2}, {0, lts.Tau, 1}, {1, "b", 3},
	})
	q := build(3, 0, [][3]interface{}{
		{0, "a", 1}, {0, "b", 2},
	})
	if Equivalent(p, q, Branching) {
		t.Error("non-inert tau choice must be preserved by branching bisim")
	}
}

func TestDivergencePreservation(t *testing.T) {
	// 0 -a-> 1 with a tau self-loop on 1, versus plain 0 -a-> 1.
	p := build(2, 0, [][3]interface{}{{0, "a", 1}, {1, lts.Tau, 1}})
	q := build(2, 0, [][3]interface{}{{0, "a", 1}})
	if !Equivalent(p, q, Branching) {
		t.Error("plain branching bisim ignores divergence")
	}
	if Equivalent(p, q, DivBranching) {
		t.Error("divbranching must distinguish divergent state")
	}
	// Divergence marker survives minimization as a tau self-loop.
	m, _ := Minimize(p, DivBranching)
	found := false
	m.EachTransition(func(tr lts.Transition) {
		if m.IsTau(tr.Label) && tr.Src == tr.Dst {
			found = true
		}
	})
	if !found {
		t.Errorf("divbranching quotient lost divergence:\n%s", m.Dump())
	}
}

func TestDivBranchingTauCycleAcrossStates(t *testing.T) {
	// A 2-state tau cycle after a: also divergent.
	p := build(3, 0, [][3]interface{}{
		{0, "a", 1}, {1, lts.Tau, 2}, {2, lts.Tau, 1},
	})
	q := build(2, 0, [][3]interface{}{{0, "a", 1}})
	if Equivalent(p, q, DivBranching) {
		t.Error("tau cycle must be seen by divbranching")
	}
	if !Equivalent(p, q, Branching) {
		t.Error("tau cycle invisible to plain branching")
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, r := range []Relation{Strong, Branching, DivBranching} {
		for i := 0; i < 15; i++ {
			l := lts.Random(rng, lts.RandomConfig{
				States: 20, Labels: 3, Density: 2, TauProb: 0.3, Connect: true,
			})
			m1, _ := Minimize(l, r)
			m2, _ := Minimize(m1, r)
			if m1.NumStates() != m2.NumStates() || m1.NumTransitions() != m2.NumTransitions() {
				t.Fatalf("%v: minimize not idempotent: %d/%d -> %d/%d", r,
					m1.NumStates(), m1.NumTransitions(), m2.NumStates(), m2.NumTransitions())
			}
		}
	}
}

func TestQuotientEquivalentToOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, r := range []Relation{Strong, Branching, DivBranching} {
		for i := 0; i < 15; i++ {
			l := lts.Random(rng, lts.RandomConfig{
				States: 15, Labels: 3, Density: 2, TauProb: 0.25, Connect: true,
			})
			q, _ := Minimize(l, r)
			if !Equivalent(l, q, r) {
				t.Fatalf("%v: quotient not equivalent to original (seed %d)", r, i)
			}
		}
	}
}

func TestEquivalentReflexiveSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 10; i++ {
		a := lts.Random(rng, lts.RandomConfig{States: 10, Labels: 2, Density: 2, TauProb: 0.2, Connect: true})
		b := lts.Random(rng, lts.RandomConfig{States: 10, Labels: 2, Density: 2, TauProb: 0.2, Connect: true})
		for _, r := range []Relation{Strong, Branching, DivBranching, Trace} {
			if !Equivalent(a, a, r) {
				t.Fatalf("%v not reflexive", r)
			}
			if Equivalent(a, b, r) != Equivalent(b, a, r) {
				t.Fatalf("%v not symmetric", r)
			}
		}
	}
}

func TestStrongImpliesBranchingImpliesTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 40; i++ {
		a := lts.Random(rng, lts.RandomConfig{States: 8, Labels: 2, Density: 1.8, TauProb: 0.25, Connect: true})
		b := lts.Random(rng, lts.RandomConfig{States: 8, Labels: 2, Density: 1.8, TauProb: 0.25, Connect: true})
		strong := Equivalent(a, b, Strong)
		branching := Equivalent(a, b, Branching)
		trace := Equivalent(a, b, Trace)
		if strong && !branching {
			t.Fatal("strong equivalence must imply branching equivalence")
		}
		if branching && !trace {
			t.Fatal("branching equivalence must imply trace equivalence")
		}
	}
}

func TestMinimizationOrdering(t *testing.T) {
	// Branching quotients are never larger than strong quotients.
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20; i++ {
		l := lts.Random(rng, lts.RandomConfig{States: 25, Labels: 3, Density: 2, TauProb: 0.3, Connect: true})
		s, _ := Minimize(l, Strong)
		br, _ := Minimize(l, Branching)
		db, _ := Minimize(l, DivBranching)
		if br.NumStates() > s.NumStates() {
			t.Fatalf("branching quotient (%d) larger than strong (%d)", br.NumStates(), s.NumStates())
		}
		if db.NumStates() > s.NumStates() {
			t.Fatalf("divbranching quotient (%d) larger than strong (%d)", db.NumStates(), s.NumStates())
		}
		if br.NumStates() > db.NumStates() {
			t.Fatalf("branching quotient (%d) larger than divbranching (%d)", br.NumStates(), db.NumStates())
		}
	}
}

func TestCompareCounterexample(t *testing.T) {
	p := build(2, 0, [][3]interface{}{{0, "a", 1}})
	q := build(2, 0, [][3]interface{}{{0, "b", 1}})
	res := Compare(p, q, Trace)
	if res.Equivalent {
		t.Fatal("a and b traces equal?")
	}
	if len(res.Counterexample) != 1 {
		t.Fatalf("counterexample = %v, want single action", res.Counterexample)
	}
	if c := res.Counterexample[0]; c != "a" && c != "b" {
		t.Fatalf("counterexample = %v", res.Counterexample)
	}
}

func TestDistinguishingTraceDeeper(t *testing.T) {
	// Difference only after prefix a.b: p allows a.b.c, q allows a.b.d.
	p := build(4, 0, [][3]interface{}{{0, "a", 1}, {1, "b", 2}, {2, "c", 3}})
	q := build(4, 0, [][3]interface{}{{0, "a", 1}, {1, "b", 2}, {2, "d", 3}})
	tr := DistinguishingTrace(p, q)
	if len(tr) != 3 || tr[0] != "a" || tr[1] != "b" {
		t.Fatalf("distinguishing trace = %v", tr)
	}
	if tr[2] != "c" && tr[2] != "d" {
		t.Fatalf("distinguishing trace = %v", tr)
	}
}

func TestDistinguishingTraceNilWhenEquivalent(t *testing.T) {
	p, q := abc(), abac()
	if tr := DistinguishingTrace(p, q); tr != nil {
		t.Fatalf("trace-equivalent systems produced counterexample %v", tr)
	}
}

func TestPartitionRejectsTrace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Partition(Trace) should panic")
		}
	}()
	Partition(abc(), Trace)
}

func TestRelationString(t *testing.T) {
	names := map[Relation]string{
		Strong: "strong", Branching: "branching",
		DivBranching: "divbranching", Trace: "trace", Relation(99): "unknown",
	}
	for r, want := range names {
		if got := r.String(); got != want {
			t.Errorf("Relation(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestTauOnlyCycleMinimization(t *testing.T) {
	// A pure tau cycle is branching-equivalent to a deadlock state
	// (no visible behaviour), but divbranching keeps the divergence.
	cyc := build(2, 0, [][3]interface{}{{0, lts.Tau, 1}, {1, lts.Tau, 0}})
	dead := lts.New("dead")
	dead.AddState()
	if !Equivalent(cyc, dead, Branching) {
		t.Error("pure tau cycle should be branching-equivalent to deadlock")
	}
	if Equivalent(cyc, dead, DivBranching) {
		t.Error("divbranching must distinguish livelock from deadlock")
	}
}

func TestSimulatesBasics(t *testing.T) {
	// Spec a.(b+c) simulates impl a.b (impl does a subset).
	spec := abc()
	impl := build(3, 0, [][3]interface{}{{0, "a", 1}, {1, "b", 2}})
	if !Simulates(spec, impl) {
		t.Error("a.(b+c) should simulate a.b")
	}
	if Simulates(impl, spec) {
		t.Error("a.b should NOT simulate a.(b+c)")
	}
}

func TestSimulationVsBisimulation(t *testing.T) {
	// a.b + a.c is simulated by a.(b+c) but NOT conversely (after the a,
	// each branch of a.b+a.c offers only one continuation), so the two
	// are not simulation equivalent — the classic spectrum example.
	p, q := abc(), abac()
	if !Simulates(p, q) {
		t.Error("a.(b+c) should simulate a.b+a.c")
	}
	if Simulates(q, p) {
		t.Error("a.b+a.c should NOT simulate a.(b+c)")
	}
	if SimulationEquivalent(p, q) {
		t.Error("not simulation equivalent")
	}
	// Mutual simulation coarser than bisimulation: a genuinely similar-
	// but-not-bisimilar pair: a.(b+b) duplicated branches vs a.b.
	r := build(4, 0, [][3]interface{}{{0, "a", 1}, {1, "b", 2}, {1, "b", 3}})
	s := build(3, 0, [][3]interface{}{{0, "a", 1}, {1, "b", 2}})
	if !SimulationEquivalent(r, s) {
		t.Error("duplicated branches should be simulation equivalent")
	}
}

func TestStrongBisimImpliesMutualSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 25; i++ {
		a := lts.Random(rng, lts.RandomConfig{States: 8, Labels: 2, Density: 1.8, Connect: true})
		b := lts.Random(rng, lts.RandomConfig{States: 8, Labels: 2, Density: 1.8, Connect: true})
		if Equivalent(a, b, Strong) && !SimulationEquivalent(a, b) {
			t.Fatal("strong bisimilarity must imply mutual simulation")
		}
		// Reflexivity.
		if !Simulates(a, a) {
			t.Fatal("simulation not reflexive")
		}
	}
}

func TestSimulatesUnknownLabel(t *testing.T) {
	spec := build(2, 0, [][3]interface{}{{0, "a", 1}})
	impl := build(2, 0, [][3]interface{}{{0, "z", 1}})
	if Simulates(spec, impl) {
		t.Error("spec without label z cannot simulate impl doing z")
	}
}

func TestSimulatesEmpty(t *testing.T) {
	empty := lts.New("empty")
	spec := abc()
	if !Simulates(spec, empty) {
		t.Error("anything simulates the empty LTS")
	}
}
