// Package bisim implements equivalence checking and minimization of
// labeled transition systems modulo behavioural equivalences, mirroring the
// role of BCG_MIN and BISIMULATOR in the CADP toolbox used by the Multival
// project.
//
// The implementation uses signature-based partition refinement (Blom &
// Orzan): states are repeatedly split according to a signature computed
// from the current partition until a fixpoint is reached. Supported
// relations:
//
//   - Strong bisimulation
//   - Branching bisimulation (inert tau steps are abstracted)
//   - Divergence-preserving branching bisimulation
//   - (Weak) trace equivalence, via determinization
package bisim

import (
	"encoding/binary"
	"sort"

	"multival/internal/lts"
)

// Relation selects a behavioural equivalence.
type Relation int

const (
	// Strong bisimulation: every transition must be matched exactly.
	Strong Relation = iota
	// Branching bisimulation: inert (same-class) tau steps are ignored.
	Branching
	// DivBranching is branching bisimulation preserving divergence
	// (tau cycles).
	DivBranching
	// Trace equivalence: equality of visible trace sets (weak traces).
	Trace
)

// String returns the conventional name of the relation.
func (r Relation) String() string {
	switch r {
	case Strong:
		return "strong"
	case Branching:
		return "branching"
	case DivBranching:
		return "divbranching"
	case Trace:
		return "trace"
	default:
		return "unknown"
	}
}

// Partition computes the coarsest partition of the states of l that is
// stable for the relation r (r must be Strong, Branching or DivBranching).
// The result maps each state to a dense block index; block ids are assigned
// in order of first occurrence by ascending state number, so the partition
// is deterministic.
//
// Partition freezes l into its CSR form and runs the parallel
// signature-refinement engine with default options; it is a thin wrapper
// over PartitionFrozen. PartitionSeq is the sequential reference
// implementation, kept for differential testing and benchmarking.
func Partition(l *lts.LTS, r Relation) []int {
	return PartitionOpt(l, r, Options{})
}

// PartitionOpt is Partition with explicit engine options.
func PartitionOpt(l *lts.LTS, r Relation, opt Options) []int {
	switch r {
	case Strong, Branching, DivBranching:
	default:
		panic("bisim: Partition requires Strong, Branching or DivBranching")
	}
	return PartitionFrozen(l.Freeze(), r, opt)
}

// PartitionSeq is the sequential reference implementation of Partition.
// It produces exactly the same block assignment as the parallel engine.
func PartitionSeq(l *lts.LTS, r Relation) []int {
	switch r {
	case Strong, Branching, DivBranching:
	default:
		panic("bisim: Partition requires Strong, Branching or DivBranching")
	}
	n := l.NumStates()
	block := make([]int, n) // initial partition: one block
	if n == 0 {
		return block
	}
	numBlocks := 1
	tau := l.LookupLabel(lts.Tau)

	for {
		var sigs []string
		switch r {
		case Strong:
			sigs = strongSignatures(l, block)
		case Branching:
			sigs = branchingSignatures(l, block, tau, false)
		case DivBranching:
			sigs = branchingSignatures(l, block, tau, true)
		}
		newBlock := make([]int, n)
		index := make(map[string]int, numBlocks*2)
		next := 0
		for s := 0; s < n; s++ {
			// The old block id is part of the key so refinement only
			// ever splits blocks, never merges them.
			key := blockKey(block[s], sigs[s])
			id, ok := index[key]
			if !ok {
				id = next
				next++
				index[key] = id
			}
			newBlock[s] = id
		}
		if next == numBlocks {
			return newBlock
		}
		block = newBlock
		numBlocks = next
	}
}

func blockKey(oldBlock int, sig string) string {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], uint64(oldBlock))
	return string(buf[:k]) + "\x00" + sig
}

// strongSignatures computes, for every state, the sorted set of
// (label, block[dst]) pairs over its outgoing transitions.
func strongSignatures(l *lts.LTS, block []int) []string {
	n := l.NumStates()
	sigs := make([]string, n)
	var pairs [][2]int
	for s := 0; s < n; s++ {
		pairs = pairs[:0]
		l.EachOutgoing(lts.State(s), func(t lts.Transition) {
			pairs = append(pairs, [2]int{t.Label, block[t.Dst]})
		})
		sigs[s] = encodePairs(pairs)
	}
	return sigs
}

// branchingSignatures computes branching-bisimulation signatures: the pairs
// (a, B) such that s can reach, via inert tau steps (tau transitions whose
// endpoints are in the same block as s), a state with an outgoing non-inert
// transition labeled a into block B. When divergence is true, states that
// can reach an inert tau cycle additionally carry a divergence marker.
func branchingSignatures(l *lts.LTS, block []int, tau int, divergence bool) []string {
	n := l.NumStates()
	sigs := make([]string, n)

	var div []bool
	if divergence {
		div = divergentStates(l, block, tau)
	}

	visited := make([]int, n) // visit stamps, avoids clearing
	for i := range visited {
		visited[i] = -1
	}
	var stack []lts.State
	var pairs [][2]int

	for s := 0; s < n; s++ {
		pairs = pairs[:0]
		myBlock := block[s]
		stack = stack[:0]
		stack = append(stack, lts.State(s))
		visited[s] = s
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			l.EachOutgoing(u, func(t lts.Transition) {
				inert := t.Label == tau && block[t.Dst] == myBlock
				if inert {
					if visited[t.Dst] != s {
						visited[t.Dst] = s
						stack = append(stack, t.Dst)
					}
					return
				}
				pairs = append(pairs, [2]int{t.Label, block[t.Dst]})
			})
		}
		if divergence && div[s] {
			// Reserved marker pair that cannot collide with a real label.
			pairs = append(pairs, [2]int{-1, -1})
		}
		sigs[s] = encodePairs(pairs)
	}
	return sigs
}

// divergentStates marks states from which an infinite inert tau path
// exists: states inside an inert tau cycle, and states reaching such a
// cycle through inert tau transitions.
func divergentStates(l *lts.LTS, block []int, tau int) []bool {
	n := l.NumStates()
	div := make([]bool, n)
	if tau < 0 {
		return div
	}
	inert := func(t lts.Transition) bool {
		return t.Label == tau && block[t.Src] == block[t.Dst]
	}
	for _, comp := range l.StronglyConnectedComponents(inert) {
		cyclic := len(comp) > 1
		if !cyclic {
			s := comp[0]
			l.EachOutgoing(s, func(t lts.Transition) {
				if inert(t) && t.Dst == s {
					cyclic = true
				}
			})
		}
		if cyclic {
			for _, s := range comp {
				div[s] = true
			}
		}
	}
	// Backward propagation through inert tau edges to a fixpoint.
	changed := true
	for changed {
		changed = false
		l.EachTransition(func(t lts.Transition) {
			if inert(t) && div[t.Dst] && !div[t.Src] {
				div[t.Src] = true
				changed = true
			}
		})
	}
	return div
}

// encodePairs canonically encodes a multiset of (label, block) pairs as a
// string usable as a map key. Duplicates are removed.
func encodePairs(pairs [][2]int) string {
	if len(pairs) == 0 {
		return ""
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	buf := make([]byte, 0, len(pairs)*4)
	var tmp [binary.MaxVarintLen64]byte
	prev := [2]int{-2, -2}
	for _, p := range pairs {
		if p == prev {
			continue
		}
		prev = p
		k := binary.PutVarint(tmp[:], int64(p[0]))
		buf = append(buf, tmp[:k]...)
		k = binary.PutVarint(tmp[:], int64(p[1]))
		buf = append(buf, tmp[:k]...)
	}
	return string(buf)
}
