package bisim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multival/internal/lts"
)

// TestQuickParallelMatchesSequential asserts the parallel signature
// refinement produces exactly the same partition (same block ids) as the
// sequential reference, for every relation and several worker counts.
func TestQuickParallelMatchesSequential(t *testing.T) {
	for _, r := range []Relation{Strong, Branching, DivBranching} {
		r := r
		t.Run(r.String(), func(t *testing.T) {
			prop := func(rl randLTS) bool {
				want := PartitionSeq(rl.L, r)
				f := rl.L.Freeze()
				for _, workers := range []int{1, 2, 4, 7} {
					got := PartitionFrozen(f, r, Options{Workers: workers})
					if len(got) != len(want) {
						return false
					}
					for i := range got {
						if got[i] != want[i] {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(prop, cfg()); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestParallelSmallChunkDifferential forces the true multi-worker path on
// moderate LTSs by shrinking the work-stealing chunk size, so worker
// scratch is genuinely shared across chunks and rounds (regression test
// for stale visit stamps surviving between refinement rounds).
func TestParallelSmallChunkDifferential(t *testing.T) {
	saved := parallelChunk
	parallelChunk = 8
	defer func() { parallelChunk = saved }()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		l := lts.Random(rng, lts.RandomConfig{
			States:  300 + rng.Intn(700),
			Labels:  4,
			Density: 3,
			TauProb: 0.35,
			Connect: true,
		})
		f := l.Freeze()
		for _, r := range []Relation{Strong, Branching, DivBranching} {
			want := PartitionSeq(l, r)
			got := PartitionFrozen(f, r, Options{Workers: 8})
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d %v: state %d: block %d vs %d",
						trial, r, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelMultiRoundDifferential covers the default chunk size with
// LTSs large enough (> parallelChunk states) that chunks migrate between
// workers across rounds.
func TestParallelMultiRoundDifferential(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := lts.Random(rng, lts.RandomConfig{
			States:  5_000,
			Labels:  5,
			Density: 3,
			TauProb: 0.3,
			Connect: true,
		})
		f := l.Freeze()
		for _, r := range []Relation{Strong, Branching, DivBranching} {
			want := PartitionSeq(l, r)
			got := PartitionFrozen(f, r, Options{Workers: 8})
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d %v: state %d: block %d vs %d",
						seed, r, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelMatchesSequentialLarge is the acceptance check of the CSR
// engine at scale: on a generated LTS of >= 50k states, the parallel
// refinement must agree block-for-block with the sequential reference.
func TestParallelMatchesSequentialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(20080310))
	l := lts.Random(rng, lts.RandomConfig{
		States:  50_000,
		Labels:  6,
		Density: 3,
		TauProb: 0.25,
		Connect: true,
	})
	for _, r := range []Relation{Strong, Branching} {
		want := PartitionSeq(l, r)
		got := Partition(l, r)
		if len(got) != len(want) {
			t.Fatalf("%v: length mismatch", r)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: block of state %d differs: %d vs %d", r, i, got[i], want[i])
			}
		}
	}
}

// TestMinimizeParallelQuotientEquivalent sanity-checks that minimizing via
// the parallel engine yields an LTS bisimilar to the input.
func TestMinimizeParallelQuotientEquivalent(t *testing.T) {
	prop := func(rl randLTS) bool {
		for _, r := range []Relation{Strong, Branching} {
			q, _ := MinimizeOpt(rl.L, r, Options{Workers: 4})
			if q.NumStates() == 0 {
				return rl.L.NumStates() == 0
			}
			if !Equivalent(rl.L, q, r) {
				return false
			}
		}
		return true
	}
	cfg := cfg()
	cfg.MaxCount = 30
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
