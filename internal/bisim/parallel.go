package bisim

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"multival/internal/engine"
	"multival/internal/lts"
	"multival/internal/scc"
)

// Options tunes the partition-refinement engine.
type Options struct {
	// Workers is the number of goroutines hashing state signatures per
	// refinement round. Zero or negative selects GOMAXPROCS.
	Workers int
	// Progress, when non-nil, observes each refinement round (stage
	// "refine": states, round number, current block count).
	Progress engine.ProgressFunc
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelChunk is the number of states a worker claims at a time. Small
// enough to balance skewed out-degrees, large enough to amortize the
// atomic increment. A variable so differential tests can shrink it to
// force the multi-worker path on small inputs.
var parallelChunk = 1024

// parallelStates runs body over [0,n) split into chunks claimed from a
// shared atomic cursor by `workers` goroutines. body receives the worker
// index (for per-worker scratch) and a half-open state range.
func parallelStates(n, workers int, body func(worker, lo, hi int)) {
	if workers <= 1 || n <= parallelChunk {
		body(0, 0, n)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(parallelChunk))) - parallelChunk
				if lo >= n {
					return
				}
				hi := lo + parallelChunk
				if hi > n {
					hi = n
				}
				body(worker, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// PartitionFrozen computes the coarsest stable partition of a frozen LTS
// for r (Strong, Branching or DivBranching) using signature-based
// refinement (Blom & Orzan) over the CSR form: every round the per-state
// signatures are computed by a worker pool in parallel shards, then block
// ids are assigned in a deterministic sequential sweep so the result is
// identical to the sequential reference (PartitionSeq) regardless of the
// worker count. It is PartitionFrozenCtx without cancellation.
func PartitionFrozen(f *lts.Frozen, r Relation, opt Options) []int {
	block, err := PartitionFrozenCtx(context.Background(), f, r, opt)
	if err != nil {
		// Unreachable: a background context never cancels.
		panic(err)
	}
	return block
}

// PartitionFrozenCtx is PartitionFrozen with cancellation: the refinement
// loop checks ctx at every round boundary and returns ctx.Err() (wrapped)
// when the context is done, so a deadline or cancel aborts refinement
// within one round. opt.Progress observes each round.
func PartitionFrozenCtx(ctx context.Context, f *lts.Frozen, r Relation, opt Options) ([]int, error) {
	switch r {
	case Strong, Branching, DivBranching:
	default:
		panic("bisim: Partition requires Strong, Branching or DivBranching")
	}
	n := f.NumStates()
	block := make([]int, n)
	if n == 0 {
		return block, nil
	}
	numBlocks := 1
	tau := f.TauID()
	workers := opt.workers()

	sigs := make([]string, n)
	// Strong signatures never run the inert-tau DFS, so skip the
	// workers x n visited arrays for that relation.
	scratch := newSigScratch(workers, n, r != Strong)

	for round := 0; ; round++ {
		if err := engine.Canceled(ctx); err != nil {
			return nil, fmt.Errorf("bisim: refinement canceled at round %d (%d blocks): %w", round, numBlocks, err)
		}
		opt.Progress.Report(engine.Progress{Stage: "refine", States: n, Round: round, Blocks: numBlocks})
		switch r {
		case Strong:
			parallelStates(n, workers, func(w, lo, hi int) {
				strongSignaturesFrozen(f, block, sigs, scratch[w], lo, hi)
			})
		case Branching, DivBranching:
			var div []bool
			if r == DivBranching {
				div = divergentStatesFrozen(f, block, tau)
			}
			// Stamps are qualified by the round so scratch can be
			// reused across rounds without clearing: a stamp left by a
			// previous round can never collide with this round's.
			stampBase := int64(round) * int64(n)
			parallelStates(n, workers, func(w, lo, hi int) {
				branchingSignaturesFrozen(f, block, tau, div, sigs, scratch[w], stampBase, lo, hi)
			})
		}

		// Deterministic sequential assignment: ids in order of first
		// occurrence by ascending state number, exactly as PartitionSeq.
		newBlock := make([]int, n)
		index := make(map[string]int, numBlocks*2)
		next := 0
		for s := 0; s < n; s++ {
			key := blockKey(block[s], sigs[s])
			id, ok := index[key]
			if !ok {
				id = next
				next++
				index[key] = id
			}
			newBlock[s] = id
		}
		if next == numBlocks {
			return newBlock, nil
		}
		block = newBlock
		numBlocks = next
	}
}

// sigScratch is per-worker reusable state for signature computation. The
// visited array holds round-qualified stamps (round*n + state), so it
// never needs clearing between rounds or states.
type sigScratch struct {
	pairs   [][2]int
	visited []int64 // visit stamps for the inert-tau DFS
	stack   []int32
}

func newSigScratch(workers, n int, withVisited bool) []*sigScratch {
	out := make([]*sigScratch, workers)
	for i := range out {
		out[i] = &sigScratch{}
		if withVisited {
			out[i].visited = make([]int64, n)
			for j := range out[i].visited {
				out[i].visited[j] = -1
			}
		}
	}
	return out
}

// strongSignaturesFrozen fills sigs[lo:hi] with the canonical encoding of
// the (label, block[dst]) pairs of each state's CSR row.
func strongSignaturesFrozen(f *lts.Frozen, block []int, sigs []string, sc *sigScratch, lo, hi int) {
	for s := lo; s < hi; s++ {
		labs, dsts := f.Out(lts.State(s))
		sc.pairs = sc.pairs[:0]
		for i := range labs {
			sc.pairs = append(sc.pairs, [2]int{int(labs[i]), block[dsts[i]]})
		}
		sigs[s] = encodePairs(sc.pairs)
	}
}

// branchingSignaturesFrozen fills sigs[lo:hi] with branching-bisimulation
// signatures: the (a, B) pairs reachable through inert tau steps, plus the
// divergence marker when div is non-nil and marks the state. stampBase
// must be round*NumStates so that stamps from earlier rounds are distinct
// from this round's.
func branchingSignaturesFrozen(f *lts.Frozen, block []int, tau int, div []bool, sigs []string, sc *sigScratch, stampBase int64, lo, hi int) {
	for s := lo; s < hi; s++ {
		stamp := stampBase + int64(s)
		sc.pairs = sc.pairs[:0]
		myBlock := block[s]
		sc.stack = append(sc.stack[:0], int32(s))
		sc.visited[s] = stamp
		for len(sc.stack) > 0 {
			u := sc.stack[len(sc.stack)-1]
			sc.stack = sc.stack[:len(sc.stack)-1]
			labs, dsts := f.Out(lts.State(u))
			for i := range labs {
				dst := dsts[i]
				if int(labs[i]) == tau && block[dst] == myBlock {
					if sc.visited[dst] != stamp {
						sc.visited[dst] = stamp
						sc.stack = append(sc.stack, dst)
					}
					continue
				}
				sc.pairs = append(sc.pairs, [2]int{int(labs[i]), block[dst]})
			}
		}
		if div != nil && div[s] {
			sc.pairs = append(sc.pairs, [2]int{-1, -1})
		}
		sigs[s] = encodePairs(sc.pairs)
	}
}

// divergentStatesFrozen marks states with an infinite inert tau path:
// members of an inert tau cycle plus states reaching one through inert tau
// transitions (backward sweep over the incoming CSR). Cycle detection runs
// on the shared iterative Tarjan engine (internal/scc) restricted to inert
// tau edges.
func divergentStatesFrozen(f *lts.Frozen, block []int, tau int) []bool {
	n := f.NumStates()
	div := make([]bool, n)
	if tau < 0 {
		return div
	}

	// Inert tau successors: the label-sorted CSR row filtered to
	// same-block destinations. The common all-inert case returns the
	// aliased row without copying.
	inertSucc := func(s int32) []int32 {
		all := f.Succ(lts.State(s), tau)
		myBlock := block[s]
		for i, d := range all {
			if block[d] != myBlock {
				kept := append([]int32(nil), all[:i]...)
				for _, d := range all[i+1:] {
					if block[d] == myBlock {
						kept = append(kept, d)
					}
				}
				return kept
			}
		}
		return all
	}

	comps, _ := scc.Strong(n, inertSucc)
	var worklist []int32 // divergent states pending backward propagation
	for _, comp := range comps {
		// A component is cyclic when it has more than one member or a
		// member with an inert tau self-loop.
		cyclic := len(comp) > 1
		if !cyclic {
			for _, d := range inertSucc(comp[0]) {
				if d == comp[0] {
					cyclic = true
					break
				}
			}
		}
		if cyclic {
			for _, w := range comp {
				div[w] = true
				worklist = append(worklist, w)
			}
		}
	}

	// Backward propagation through inert tau edges via the incoming CSR.
	for len(worklist) > 0 {
		s := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		labs, srcs := f.In(lts.State(s))
		lo := sort.Search(len(labs), func(i int) bool { return labs[i] >= int32(tau) })
		for i := lo; i < len(labs) && labs[i] == int32(tau); i++ {
			src := srcs[i]
			if !div[src] && block[src] == block[s] {
				div[src] = true
				worklist = append(worklist, src)
			}
		}
	}
	return div
}
