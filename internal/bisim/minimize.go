package bisim

import (
	"context"
	"fmt"
	"sort"

	"multival/internal/lts"
)

// Minimize returns the quotient of l modulo the relation r, together with
// the mapping state -> block. The quotient has one state per block of the
// coarsest stable partition; for branching relations, inert tau transitions
// disappear (except divergence self-loops under DivBranching).
//
// For Trace, the LTS is determinized first and the result is the minimal
// deterministic LTS for the weak-trace language.
func Minimize(l *lts.LTS, r Relation) (*lts.LTS, []int) {
	return MinimizeOpt(l, r, Options{})
}

// MinimizeOpt is Minimize with explicit engine options (worker count of
// the parallel refinement).
func MinimizeOpt(l *lts.LTS, r Relation, opt Options) (*lts.LTS, []int) {
	q, block, err := MinimizeCtx(context.Background(), l, r, opt)
	if err != nil {
		// Unreachable: a background context never cancels.
		panic(err)
	}
	return q, block
}

// MinimizeCtx is MinimizeOpt with cancellation: refinement checks ctx at
// every round boundary and the call returns ctx.Err() (wrapped) when the
// context is done.
func MinimizeCtx(ctx context.Context, l *lts.LTS, r Relation, opt Options) (*lts.LTS, []int, error) {
	if r == Trace {
		d := l.Determinize()
		q, _, err := MinimizeCtx(ctx, d, Strong, opt)
		if err != nil {
			return nil, nil, err
		}
		q.SetName(l.Name() + ".min")
		// The state->block map refers to determinized states, which is
		// not meaningful for callers in terms of original states.
		return q, nil, nil
	}
	block, err := PartitionFrozenCtx(ctx, l.Freeze(), r, opt)
	if err != nil {
		return nil, nil, err
	}
	q := quotient(l, block, r)
	q.SetName(l.Name() + ".min")
	return q, block, nil
}

// quotient builds the quotient LTS from a stable partition.
func quotient(l *lts.LTS, block []int, r Relation) *lts.LTS {
	q := lts.New(l.Name())
	n := l.NumStates()
	if n == 0 {
		return q
	}
	numBlocks := 0
	for _, b := range block {
		if b+1 > numBlocks {
			numBlocks = b + 1
		}
	}
	q.AddStates(numBlocks)
	q.SetInitial(lts.State(block[l.Initial()]))

	tau := l.LookupLabel(lts.Tau)
	type edge struct {
		src, lab, dst int
	}
	seen := make(map[edge]bool)

	switch r {
	case Strong:
		l.EachTransition(func(t lts.Transition) {
			e := edge{block[t.Src], t.Label, block[t.Dst]}
			if !seen[e] {
				seen[e] = true
				q.AddTransition(lts.State(e.src), l.LabelName(t.Label), lts.State(e.dst))
			}
		})
	case Branching, DivBranching:
		// Keep exactly the non-inert transitions (inert tau steps are
		// internal to a block and vanish in the quotient).
		l.EachTransition(func(t lts.Transition) {
			if t.Label == tau && block[t.Src] == block[t.Dst] {
				return
			}
			e := edge{block[t.Src], t.Label, block[t.Dst]}
			if !seen[e] {
				seen[e] = true
				q.AddTransition(lts.State(e.src), l.LabelName(t.Label), lts.State(e.dst))
			}
		})
		if r == DivBranching {
			div := divergentStates(l, block, tau)
			marked := make(map[int]bool)
			for s := 0; s < n; s++ {
				if div[s] && !marked[block[s]] {
					marked[block[s]] = true
					q.AddTransition(lts.State(block[s]), lts.Tau, lts.State(block[s]))
				}
			}
		}
	}
	trimmed, _ := q.Trim()
	return trimmed
}

// Equivalent reports whether the initial states of a and b are related by r.
func Equivalent(a, b *lts.LTS, r Relation) bool {
	return EquivalentOpt(a, b, r, Options{})
}

// EquivalentOpt is Equivalent with explicit engine options.
func EquivalentOpt(a, b *lts.LTS, r Relation, opt Options) bool {
	eq, err := EquivalentCtx(context.Background(), a, b, r, opt)
	if err != nil {
		// Unreachable: a background context never cancels.
		panic(err)
	}
	return eq
}

// EquivalentCtx is Equivalent with cancellation (see MinimizeCtx).
func EquivalentCtx(ctx context.Context, a, b *lts.LTS, r Relation, opt Options) (bool, error) {
	if r == Trace {
		da, db := a.Determinize(), b.Determinize()
		return EquivalentCtx(ctx, da, db, Strong, opt)
	}
	u, initA, initB := DisjointUnion(a, b)
	block, err := PartitionFrozenCtx(ctx, u.Freeze(), r, opt)
	if err != nil {
		return false, err
	}
	return block[initA] == block[initB], nil
}

// DisjointUnion places a and b side by side in a single LTS and returns it
// together with the images of both initial states. The union's initial
// state is the image of a's initial state.
func DisjointUnion(a, b *lts.LTS) (u *lts.LTS, initA, initB lts.State) {
	u = lts.New(fmt.Sprintf("union(%s,%s)", a.Name(), b.Name()))
	u.AddStates(a.NumStates() + b.NumStates())
	off := lts.State(a.NumStates())
	a.EachTransition(func(t lts.Transition) {
		u.AddTransition(t.Src, a.LabelName(t.Label), t.Dst)
	})
	b.EachTransition(func(t lts.Transition) {
		u.AddTransition(t.Src+off, b.LabelName(t.Label), t.Dst+off)
	})
	if a.NumStates() > 0 {
		u.SetInitial(a.Initial())
	}
	return u, a.Initial(), b.Initial() + off
}

// CompareResult reports the outcome of a Compare call.
type CompareResult struct {
	Relation   Relation
	Equivalent bool
	// Counterexample is a distinguishing visible trace when the relation
	// is Trace (or when trace inequivalence already explains the
	// difference); nil otherwise or when equivalent.
	Counterexample []string
}

// Compare checks equivalence and, when the LTSs differ, attempts to produce
// a distinguishing trace: a sequence of visible actions possible in exactly
// one of the two systems. A distinguishing trace always exists for Trace;
// for the bisimulations it exists only when the trace sets already differ
// (bisimulation is finer than trace equivalence), so it may be nil even for
// inequivalent systems.
func Compare(a, b *lts.LTS, r Relation) CompareResult {
	return CompareOpt(a, b, r, Options{})
}

// CompareOpt is Compare with explicit engine options.
func CompareOpt(a, b *lts.LTS, r Relation, opt Options) CompareResult {
	res, err := CompareCtx(context.Background(), a, b, r, opt)
	if err != nil {
		// Unreachable: a background context never cancels.
		panic(err)
	}
	return res
}

// CompareCtx is Compare with cancellation (see MinimizeCtx).
func CompareCtx(ctx context.Context, a, b *lts.LTS, r Relation, opt Options) (CompareResult, error) {
	eq, err := EquivalentCtx(ctx, a, b, r, opt)
	if err != nil {
		return CompareResult{}, err
	}
	res := CompareResult{Relation: r, Equivalent: eq}
	if !res.Equivalent {
		res.Counterexample = DistinguishingTrace(a, b)
	}
	return res, nil
}

// DistinguishingTrace returns a shortest visible trace accepted by exactly
// one of a, b, or nil if their weak-trace sets coincide. It runs a BFS over
// the synchronous product of the determinized systems.
func DistinguishingTrace(a, b *lts.LTS) []string {
	da, db := a.Determinize(), b.Determinize()

	type pair struct{ x, y int } // -1 encodes "no state" (trace left the system)
	type item struct {
		p     pair
		trace []string
	}
	start := pair{int(da.Initial()), int(db.Initial())}
	if da.NumStates() == 0 || db.NumStates() == 0 {
		// Degenerate; treat an empty LTS as having only the empty trace.
		return nil
	}
	seen := map[pair]bool{start: true}
	queue := []item{{p: start}}
	for qi := 0; qi < len(queue); qi++ {
		it := queue[qi]
		// Collect labels offered on either side.
		labels := map[string]bool{}
		if it.p.x >= 0 {
			da.EachOutgoing(lts.State(it.p.x), func(t lts.Transition) {
				labels[da.LabelName(t.Label)] = true
			})
		}
		if it.p.y >= 0 {
			db.EachOutgoing(lts.State(it.p.y), func(t lts.Transition) {
				labels[db.LabelName(t.Label)] = true
			})
		}
		sorted := make([]string, 0, len(labels))
		for lab := range labels {
			sorted = append(sorted, lab)
		}
		sort.Strings(sorted)
		for _, lab := range sorted {
			nx, ny := -1, -1
			if it.p.x >= 0 {
				if id := da.LookupLabel(lab); id >= 0 {
					if succ := da.Successors(lts.State(it.p.x), id); len(succ) == 1 {
						nx = int(succ[0])
					}
				}
			}
			if it.p.y >= 0 {
				if id := db.LookupLabel(lab); id >= 0 {
					if succ := db.Successors(lts.State(it.p.y), id); len(succ) == 1 {
						ny = int(succ[0])
					}
				}
			}
			trace := append(append([]string(nil), it.trace...), lab)
			if (nx < 0) != (ny < 0) {
				return trace
			}
			if nx < 0 && ny < 0 {
				continue
			}
			np := pair{nx, ny}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, item{np, trace})
			}
		}
	}
	return nil
}
