package bisim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"multival/internal/aut"
	"multival/internal/lts"
)

type randLTS struct{ L *lts.LTS }

func (randLTS) Generate(rng *rand.Rand, size int) reflect.Value {
	if size > 20 {
		size = 20
	}
	l := lts.Random(rng, lts.RandomConfig{
		States:  2 + rng.Intn(size+2),
		Labels:  1 + rng.Intn(3),
		Density: 0.8 + rng.Float64()*2,
		TauProb: rng.Float64() * 0.4,
		Connect: true,
	})
	return reflect.ValueOf(randLTS{l})
}

func cfg() *quick.Config {
	return &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(42))}
}

func TestQuickQuotientEquivalent(t *testing.T) {
	for _, rel := range []Relation{Strong, Branching, DivBranching} {
		rel := rel
		prop := func(r randLTS) bool {
			q, _ := Minimize(r.L, rel)
			return Equivalent(r.L, q, rel)
		}
		if err := quick.Check(prop, cfg()); err != nil {
			t.Errorf("%v: %v", rel, err)
		}
	}
}

func TestQuickMinimizeIdempotent(t *testing.T) {
	for _, rel := range []Relation{Strong, Branching, DivBranching} {
		rel := rel
		prop := func(r randLTS) bool {
			q1, _ := Minimize(r.L, rel)
			q2, _ := Minimize(q1, rel)
			return q1.NumStates() == q2.NumStates() &&
				q1.NumTransitions() == q2.NumTransitions()
		}
		if err := quick.Check(prop, cfg()); err != nil {
			t.Errorf("%v: %v", rel, err)
		}
	}
}

func TestQuickRelationInclusions(t *testing.T) {
	// Strong ⟹ DivBranching ⟹ Branching ⟹ Trace, on pairs.
	prop := func(a, b randLTS) bool {
		if Equivalent(a.L, b.L, Strong) && !Equivalent(a.L, b.L, DivBranching) {
			return false
		}
		if Equivalent(a.L, b.L, DivBranching) && !Equivalent(a.L, b.L, Branching) {
			return false
		}
		trimA, _ := a.L.Trim()
		trimB, _ := b.L.Trim()
		if trimA.NumStates() > 10 || trimB.NumStates() > 10 {
			return true // keep trace (determinization) cheap
		}
		if Equivalent(a.L, b.L, Branching) && !Equivalent(a.L, b.L, Trace) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickQuotientOrdering(t *testing.T) {
	// Coarser relations yield smaller (or equal) quotients.
	prop := func(r randLTS) bool {
		s, _ := Minimize(r.L, Strong)
		db, _ := Minimize(r.L, DivBranching)
		br, _ := Minimize(r.L, Branching)
		return br.NumStates() <= db.NumStates() && db.NumStates() <= s.NumStates()
	}
	if err := quick.Check(prop, cfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickPartitionIsEquivalenceInvariant(t *testing.T) {
	// Two states in the same block of the strong partition must remain
	// in the same block after minimizing (block of block).
	prop := func(r randLTS) bool {
		block := Partition(r.L, Strong)
		q, mapping := Minimize(r.L, Strong)
		_ = q
		for s := 0; s < r.L.NumStates(); s++ {
			for u := s + 1; u < r.L.NumStates(); u++ {
				if (block[s] == block[u]) != (mapping[s] == mapping[u]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickAutRoundtripPreservesEquivalence(t *testing.T) {
	// Serialization must not change behaviour (full-stack property).
	prop := func(r randLTS) bool {
		got, err := aut.ReadString(aut.WriteString(r.L))
		if err != nil {
			return false
		}
		return Equivalent(r.L, got, Strong)
	}
	if err := quick.Check(prop, cfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickDistinguishingTraceIsValid(t *testing.T) {
	// When a distinguishing trace exists, it must indeed be accepted by
	// exactly one of the two systems.
	accepts := func(l *lts.LTS, trace []string) bool {
		cur := map[lts.State]bool{}
		for _, s := range l.TauClosure(l.Initial()) {
			cur[s] = true
		}
		for _, lab := range trace {
			id := l.LookupLabel(lab)
			next := map[lts.State]bool{}
			if id >= 0 {
				for s := range cur {
					for _, d := range l.Successors(s, id) {
						for _, c := range l.TauClosure(d) {
							next[c] = true
						}
					}
				}
			}
			if len(next) == 0 {
				return false
			}
			cur = next
		}
		return true
	}
	prop := func(a, b randLTS) bool {
		trimA, _ := a.L.Trim()
		trimB, _ := b.L.Trim()
		if trimA.NumStates() > 8 || trimB.NumStates() > 8 {
			return true
		}
		tr := DistinguishingTrace(a.L, b.L)
		if tr == nil {
			return true
		}
		return accepts(a.L, tr) != accepts(b.L, tr)
	}
	if err := quick.Check(prop, cfg()); err != nil {
		t.Error(err)
	}
}
