package markov

import (
	"math"

	"multival/internal/engine"
	"multival/internal/sparse"
)

// Bias solves the Poisson equation of the chain for a state reward-rate
// vector: given the long-run average reward (gain) g = sum_i pi_i *
// reward_i, it returns relative values h satisfying
//
//	h_s = (reward_s - g + sum_d rate(s->d) * h_d) / E_s
//
// for non-absorbing states, normalized so h[initial] = 0; absorbing
// states keep h = 0 (with zero exit rate their relative value is pinned
// by the boundary). The bias measures the transient reward advantage of
// starting in a state, and is the improvement gradient of average-reward
// (Howard) policy iteration: a policy switch is profitable exactly when
// it increases instantaneous reward plus successor bias.
//
// The sweep is always the DAMPED Jacobi hitting kernel (sequential on
// one chunk unless opts.Workers asks for more): the Gauss–Seidel order
// sweeps along OUTGOING edges, and on a cycle of odd length its
// iteration operator keeps an eigenvalue of modulus one, so the iterate
// oscillates forever; the damped Jacobi operator is (I + P)/2 with P the
// embedded jump chain, whose spectrum it maps strictly inside the unit
// disk except at the constant direction. That direction is projected to
// h[initial] = 0 after every sweep; convergence is measured relative to
// the magnitude of h. The equation is singular along the constant
// vector, and the gain cancels its drift only for unichain structure —
// a chain with several BSCCs (whose local gains generally differ from
// g) is rejected up front with IrreducibilityError rather than letting
// the iterate drift through the whole iteration budget.
func (c *CTMC) Bias(reward []float64, gain float64, opts SolveOptions) ([]float64, error) {
	opts, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	n := c.numStates
	c.matrix() // the bias sweep never reads the incoming view
	bsccs := c.bsccs()
	if len(bsccs) > 1 {
		return nil, &IrreducibilityError{bsccs[1][0], "is in a second bottom component (bias needs unichain structure)"}
	}
	// Krylov path: when the chain has no absorbing boundary (the usual
	// unichain case), pinning h at one recurrent reference state makes
	// the Poisson system nonsingular and one deflated BiCGSTAB solve
	// replaces the damped sweeps. With an absorbing boundary the legacy
	// projection semantics (absorbing states pinned at 0) differ from
	// the deflated system, so the sweep path keeps that case.
	krylovFell := false
	if !opts.legacy() && opts.blockMethod(n-1) == MethodBiCGSTAB && n > 1 {
		ref := bsccs[0][0]
		if c.exitRate[ref] > 0 {
			h, ok, err := c.biasKrylov(reward, gain, ref, opts)
			if err != nil {
				return nil, err
			}
			if ok {
				return h, nil
			}
			krylovFell = true
		}
	}
	mat := c.matrix()
	skip := make([]bool, n)
	b := make([]float64, n)
	for s := 0; s < n; s++ {
		if c.exitRate[s] == 0 {
			skip[s] = true
			continue
		}
		b[s] = reward[s] - gain
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	h := make([]float64, n)
	next := make([]float64, n)
	ref := c.initial
	residual := math.Inf(1)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		if err := opts.canceled("bias", iter); err != nil {
			return nil, err
		}
		residual = sparse.HittingSweepJacobi(mat, skip, b, c.exitRate, h, next, workers)
		h, next = next, h
		// Project out the constant direction and measure scale.
		shift := h[ref]
		norm := 0.0
		for s := 0; s < n; s++ {
			if !skip[s] {
				h[s] -= shift
			}
			if a := math.Abs(h[s]); a > norm {
				norm = a
			}
		}
		if iter%progressEvery == 0 {
			opts.Progress.Report(engine.Progress{Stage: "bias", States: n, Round: iter, Residual: residual})
		}
		if residual < opts.Tolerance*(1+norm) {
			return h, nil
		}
	}
	ce := &ConvergenceError{Iterations: opts.MaxIterations, Residual: residual, Method: string(MethodJacobi)}
	if krylovFell {
		ce.Method = string(MethodBiCGSTAB)
		ce.Fallback = string(MethodJacobi)
	}
	return nil, ce
}
