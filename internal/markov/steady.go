package markov

import (
	"context"
	"fmt"
	"math"

	"multival/internal/engine"
	"multival/internal/sparse"
)

// SolveOptions tunes the iterative solvers.
type SolveOptions struct {
	// Tolerance is the convergence threshold on the max-norm of the
	// iterate difference (default 1e-12).
	Tolerance float64
	// MaxIterations bounds the iteration count (default 1_000_000).
	MaxIterations int
	// Workers selects the solver kernel: values above 1 run the
	// parallel Jacobi sweeps (rows chunk-sharded across that many
	// goroutines) and the parallel uniformization product; 0 or 1 keeps
	// the sequential Gauss–Seidel default, which needs fewer sweeps to
	// converge on one core.
	Workers int
	// Ctx, when non-nil, cancels the solver: every sweep and
	// uniformization step checks it, and the solve returns Ctx.Err()
	// (wrapped) once the context is done. Carried in the options struct
	// so it threads through the nested solver helpers without widening
	// every signature.
	Ctx context.Context
	// Progress, when non-nil, observes solver sweeps (stage "steady",
	// "absorb", "fpt", "bias" or "transient"; Round is the sweep
	// number, Residual the current max-norm delta).
	Progress engine.ProgressFunc
	// Method selects the linear-solver kernel family: MethodAuto (the
	// zero value) restructures the hitting-type analyses into
	// SCC-topological block solves with BiCGSTAB on large blocks, while
	// stationary balance systems keep Gauss–Seidel sweeps; MethodGS and
	// MethodJacobi force the legacy global sweep paths bit-for-bit;
	// MethodBiCGSTAB forces the Krylov kernel on every system. See the
	// Method constants.
	Method Method
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.Tolerance == 0 {
		o.Tolerance = 1e-12
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 1_000_000
	}
	return o
}

// parallel reports whether the options select the parallel Jacobi
// kernels.
func (o SolveOptions) parallel() bool { return o.Workers > 1 }

// canceled returns the wrapped context error once the solve's context is
// done, nil otherwise.
func (o SolveOptions) canceled(stage string, sweep int) error {
	if err := engine.Canceled(o.Ctx); err != nil {
		return fmt.Errorf("markov: %s solve canceled at sweep %d: %w", stage, sweep, err)
	}
	return nil
}

// progressEvery is the number of solver sweeps between progress reports.
const progressEvery = 128

// ConvergenceError reports that an iterative solver did not converge;
// Residual carries the max-norm delta of the last sweep.
type ConvergenceError struct {
	Iterations int
	Residual   float64
	// Method names the solver kernel the options selected for the
	// failing system ("gs", "jacobi", "bicgstab"; empty on paths that
	// predate method selection).
	Method string
	// Fallback names the kernel the solve downgraded to before
	// exhausting the budget (GS stagnation → "jacobi", BiCGSTAB
	// breakdown → "jacobi"); empty when no fallback was taken.
	Fallback string
}

func (e *ConvergenceError) Error() string {
	msg := fmt.Sprintf("markov: no convergence after %d iterations (residual %g", e.Iterations, e.Residual)
	if e.Method != "" {
		msg += ", method " + e.Method
		if e.Fallback != "" {
			msg += ", fell back to " + e.Fallback
		}
	}
	return msg + ")"
}

// Unwrap classifies the error as the shared no-convergence sentinel, so
// errors.Is(err, engine.ErrNoConvergence) holds.
func (e *ConvergenceError) Unwrap() error { return engine.ErrNoConvergence }

// IrreducibilityError reports that an analysis needed reachability the
// chain does not have (a state that cannot reach any target, or an
// absorbing state outside the target set).
type IrreducibilityError struct {
	State  int
	Reason string
}

func (e *IrreducibilityError) Error() string {
	return fmt.Sprintf("markov: state %d %s", e.State, e.Reason)
}

// Unwrap classifies the error as the shared irreducibility sentinel, so
// errors.Is(err, engine.ErrNotIrreducible) holds.
func (e *IrreducibilityError) Unwrap() error { return engine.ErrNotIrreducible }

// SteadyState computes the limiting distribution of the chain started in
// the initial state. Transient states receive probability zero; when the
// chain has several bottom strongly connected components (BSCCs), their
// stationary distributions are weighted by the probability of absorption
// into each BSCC from the initial state.
func (c *CTMC) SteadyState(opts SolveOptions) ([]float64, error) {
	opts, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	n := c.numStates
	if n == 0 {
		return nil, fmt.Errorf("markov: empty chain")
	}
	// The block path needs the full SCC decomposition (transient
	// components included); the legacy path only the bottoms — except
	// when two BFS passes prove the chain is one strongly connected
	// component, in which case the whole decomposition is skipped: the
	// single BSCC is the entire state space.
	var (
		comps  [][]int32
		compOf []int32
		bsccs  [][]int
	)
	switch {
	case opts.legacy():
		bsccs = c.bsccs()
	case c.stronglyConnectedAll():
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		bsccs = [][]int{all}
	default:
		mat := c.matrix()
		comps, compOf = mat.SCCs()
		bsccs = mat.BottomsOf(comps, compOf)
	}
	if len(bsccs) == 0 {
		return nil, fmt.Errorf("markov: no bottom component (internal error)")
	}

	pi := make([]float64, n)
	if len(bsccs) == 1 {
		local, err := c.stationaryWithin(bsccs[0], opts)
		if err != nil {
			return nil, err
		}
		for i, s := range bsccs[0] {
			pi[s] = local[i]
		}
		return pi, nil
	}

	// Multiple BSCCs: weight each stationary distribution by the
	// absorption probability from the initial state.
	var weights []float64
	if opts.legacy() {
		weights, err = c.absorptionProbabilities(bsccs, opts)
	} else {
		weights, err = c.absorptionBlocks(bsccs, comps, compOf, opts)
	}
	if err != nil {
		return nil, err
	}
	for bi, members := range bsccs {
		if weights[bi] == 0 {
			continue
		}
		local, err := c.stationaryWithin(members, opts)
		if err != nil {
			return nil, err
		}
		for i, s := range members {
			pi[s] += weights[bi] * local[i]
		}
	}
	return pi, nil
}

// stationaryWithin solves the stationary distribution restricted to one
// BSCC from the balance equations
//
//	pi_j * E_j = sum_i pi_i * rate(i->j),
//
// renormalizing every sweep. The BSCC's incoming submatrix is compacted
// once into a local CSR form, then every sweep reads the flat
// rowOff/col/val arrays (Gauss–Seidel in place by default, parallel
// Jacobi when opts.Workers > 1). An absorbing singleton gets
// probability 1.
func (c *CTMC) stationaryWithin(members []int, opts SolveOptions) ([]float64, error) {
	m := len(members)
	if m == 1 {
		return []float64{1}, nil
	}
	// Local incoming submatrix: row j lists the in-component transitions
	// into members[j]. Row sums of the outgoing submatrix are the local
	// exit rates (a BSCC has no edge leaving the component, so they
	// equal the full exit rates; compacting keeps that true by
	// construction even on defective input). When the BSCC is the whole
	// chain — the common irreducible case — the compaction would be an
	// identity copy, so the original matrix and its cached transpose are
	// used directly; the exit rates are then re-accumulated in CSR row
	// order, which reproduces the Submatrix row sums bit for bit.
	exit := make([]float64, m)
	var sub, tin *sparse.Matrix
	if m == c.numStates {
		sub = c.matrix()
		tin = c.incoming()
		for i := range exit {
			_, vals := sub.Row(i)
			total := 0.0
			for _, v := range vals {
				total += v
			}
			exit[i] = total
		}
	} else {
		sub = c.matrix().Submatrix(members)
		tin = sub.Transpose()
		for i := range exit {
			exit[i] = sub.RowSum(i)
		}
	}

	// The Krylov path runs only when forced: on singular stationary
	// balance systems the Gauss–Seidel sweep typically converges in tens
	// of sweeps, which no BiCGSTAB iteration count beats (measured ~3x
	// slower on well-mixed 100k-state chains), so auto keeps the sweeps
	// and takes its speedup from skipping the decomposition/compaction
	// setup instead. Breakdown, stall or an unreliable solution falls
	// through to the damped-Jacobi sweeps below (the advertised
	// BiCGSTAB → Jacobi fallback).
	krylovFell := false
	if opts.Method == MethodBiCGSTAB {
		var bs blockScratch
		pi, ok, err := stationaryKrylov(sub, tin, exit, opts, &bs)
		if err != nil {
			return nil, err
		}
		if ok {
			return pi, nil
		}
		krylovFell = true
	}

	pi := make([]float64, m)
	for i := range pi {
		pi[i] = 1 / float64(m)
	}
	// Gauss–Seidel is the sequential default, but its convergence depends
	// on the sweep order agreeing with the cycle structure: on an
	// odd-length cycle oriented against the index order the sweep
	// operator keeps an eigenvalue of modulus one and the residual
	// stagnates. Detect stagnation (the residual failing to shrink
	// across a window) and fall back to the damped Jacobi sweep, which is
	// semiconvergent on every irreducible component regardless of
	// orientation.
	useJacobi := opts.parallel() || opts.Method == MethodJacobi || krylovFell
	startKernel := string(MethodGS)
	if useJacobi {
		startKernel = string(MethodJacobi)
	}
	swept := false
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	var next []float64
	if useJacobi {
		next = make([]float64, m)
	}
	const stagnationWindow = 128
	windowResidual := math.Inf(1)
	residual := math.Inf(1)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		if err := opts.canceled("steady", iter); err != nil {
			return nil, err
		}
		if useJacobi {
			residual = sparse.StationarySweepJacobi(tin, exit, pi, next, workers)
			pi, next = next, pi
		} else {
			residual = sparse.StationarySweepGS(tin, exit, pi)
			if iter%stagnationWindow == stagnationWindow-1 {
				// Oscillation holds the residual constant (ratio ~1);
				// a chain merely converging slowly still shrinks it.
				// The 0.999 threshold only trips at a per-sweep factor
				// above 0.999992 — where Gauss–Seidel is effectively
				// stuck too, so the damped-Jacobi penalty is moot.
				if residual >= 0.999*windowResidual {
					useJacobi = true
					swept = true
					nFallbackGSJacobi.Add(1)
					next = make([]float64, m)
				}
				windowResidual = residual
			}
		}
		// Normalize.
		total := 0.0
		for _, p := range pi {
			total += p
		}
		if total <= 0 {
			return nil, fmt.Errorf("markov: stationary iteration degenerated")
		}
		for j := range pi {
			pi[j] /= total
		}
		if iter%progressEvery == 0 {
			opts.Progress.Report(engine.Progress{Stage: "steady", States: m, Round: iter, Residual: residual})
		}
		if residual < opts.Tolerance {
			return pi, nil
		}
	}
	ce := &ConvergenceError{Iterations: opts.MaxIterations, Residual: residual}
	if krylovFell {
		ce.Method = string(MethodBiCGSTAB)
		ce.Fallback = string(MethodJacobi)
	} else {
		ce.Method = startKernel
		if swept {
			ce.Fallback = string(MethodJacobi)
		}
	}
	return nil, ce
}

// absorptionProbabilities computes, for each BSCC, the probability that
// the chain started in the initial state is absorbed into it, by solving
// the linear system over transient states on the flat CSR arrays. Only
// k-1 of the k systems are solved: the absorption probabilities sum to
// one, so the last BSCC gets the complement.
func (c *CTMC) absorptionProbabilities(bsccs [][]int, opts SolveOptions) ([]float64, error) {
	n := c.numStates
	inBSCC := make([]int, n)
	for i := range inBSCC {
		inBSCC[i] = -1
	}
	for bi, members := range bsccs {
		for _, s := range members {
			inBSCC[s] = bi
		}
	}
	weights := make([]float64, len(bsccs))
	if b := inBSCC[c.initial]; b >= 0 {
		weights[b] = 1
		return weights, nil
	}
	// h[s] per system bi: absorption probability from transient state s,
	// with h fixed at 1 inside BSCC bi and 0 inside the others:
	// h[s] = (sum_d rate(s->d)*h[d]) / exit[s] over transient states.
	mat := c.matrix()
	skip := make([]bool, n)
	for s := 0; s < n; s++ {
		skip[s] = inBSCC[s] >= 0
	}
	b := make([]float64, n) // zero right-hand side
	h := make([]float64, n)
	useJ := opts.parallel() || opts.Method == MethodJacobi
	var next []float64
	if useJ {
		next = make([]float64, n)
	}
	rest := 1.0
	for bi := 0; bi < len(bsccs)-1; bi++ {
		for s := 0; s < n; s++ {
			if inBSCC[s] == bi {
				h[s] = 1
			} else {
				h[s] = 0
			}
		}
		residual := math.Inf(1)
		converged := false
		for iter := 0; iter < opts.MaxIterations; iter++ {
			if err := opts.canceled("absorb", iter); err != nil {
				return nil, err
			}
			if useJ {
				residual = sparse.HittingSweepJacobi(mat, skip, b, c.exitRate, h, next, opts.Workers)
				h, next = next, h
			} else {
				residual = sparse.HittingSweepGS(mat, skip, b, c.exitRate, h)
			}
			if iter%progressEvery == 0 {
				opts.Progress.Report(engine.Progress{Stage: "absorb", States: n, Round: iter, Residual: residual})
			}
			if residual < opts.Tolerance {
				converged = true
				break
			}
		}
		if !converged {
			method := string(MethodGS)
			if useJ {
				method = string(MethodJacobi)
			}
			return nil, &ConvergenceError{Iterations: opts.MaxIterations, Residual: residual, Method: method}
		}
		weights[bi] = h[c.initial]
		rest -= weights[bi]
	}
	// The last system is determined by the others: probabilities of
	// absorption sum to one.
	if rest < 0 {
		rest = 0
	}
	weights[len(bsccs)-1] = rest
	// Normalize tiny numerical drift.
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total > 0 {
		for i := range weights {
			weights[i] /= total
		}
	}
	return weights, nil
}

// Throughput returns the steady-state occurrence rate of transitions whose
// label satisfies pred: sum over matching transitions of pi(src)*rate.
func (c *CTMC) Throughput(pi []float64, pred func(label string) bool) float64 {
	total := 0.0
	for _, t := range c.trans {
		if pred(t.Label) {
			total += pi[t.Src] * t.Rate
		}
	}
	return total
}

// ExpectedReward returns the steady-state expectation of a state reward
// vector.
func ExpectedReward(pi, reward []float64) float64 {
	total := 0.0
	for i, p := range pi {
		total += p * reward[i]
	}
	return total
}

// ExpectedTimeToAbsorption returns, for every state, the expected time
// until one of the target states is first reached (0 on targets). It
// returns an error if some state cannot reach a target (infinite
// expectation) — callers should trim to relevant states first.
func (c *CTMC) ExpectedTimeToAbsorption(targets []int, opts SolveOptions) ([]float64, error) {
	opts, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	n := c.numStates
	isTarget := make([]bool, n)
	for _, s := range targets {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("markov: target %d out of range", s)
		}
		isTarget[s] = true
	}
	c.Freeze()
	// Reachability check (backwards from targets, over the shared
	// transposed rate matrix).
	canReach := make([]bool, n)
	tin := c.incoming()
	var stack []int
	for s := range isTarget {
		if isTarget[s] {
			canReach[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		srcs, _ := tin.Row(s)
		for _, src := range srcs {
			if !canReach[src] {
				canReach[src] = true
				stack = append(stack, int(src))
			}
		}
	}
	for s := 0; s < n; s++ {
		if !canReach[s] {
			return nil, &IrreducibilityError{s, "cannot reach any target (infinite expected time)"}
		}
		if !isTarget[s] && c.exitRate[s] == 0 {
			return nil, &IrreducibilityError{s, "is absorbing but not a target"}
		}
	}

	// h[s] = (1 + sum_d rate(s->d)*h[d]) / exit[s] on non-targets. The
	// block path solves it component-by-component in reverse topological
	// order; the legacy methods sweep the flat CSR arrays globally.
	if !opts.legacy() {
		return c.hittingBlocks(isTarget, opts)
	}
	mat := c.matrix()
	b := make([]float64, n)
	for s := 0; s < n; s++ {
		if !isTarget[s] {
			b[s] = 1
		}
	}
	h := make([]float64, n)
	useJ := opts.parallel() || opts.Method == MethodJacobi
	var next []float64
	if useJ {
		next = make([]float64, n)
	}
	residual := math.Inf(1)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		if err := opts.canceled("fpt", iter); err != nil {
			return nil, err
		}
		if useJ {
			residual = sparse.HittingSweepJacobi(mat, isTarget, b, c.exitRate, h, next, opts.Workers)
			h, next = next, h
		} else {
			residual = sparse.HittingSweepGS(mat, isTarget, b, c.exitRate, h)
		}
		if iter%progressEvery == 0 {
			opts.Progress.Report(engine.Progress{Stage: "fpt", States: n, Round: iter, Residual: residual})
		}
		if residual < opts.Tolerance {
			return h, nil
		}
	}
	method := string(MethodGS)
	if useJ {
		method = string(MethodJacobi)
	}
	return nil, &ConvergenceError{Iterations: opts.MaxIterations, Residual: residual, Method: method}
}
