package markov

import (
	"context"
	"fmt"
	"math"

	"multival/internal/engine"
)

// SolveOptions tunes the iterative solvers.
type SolveOptions struct {
	// Tolerance is the convergence threshold on the max-norm of the
	// iterate difference (default 1e-12).
	Tolerance float64
	// MaxIterations bounds the iteration count (default 1_000_000).
	MaxIterations int
	// Ctx, when non-nil, cancels the solver: every Gauss–Seidel sweep
	// and uniformization step checks it, and the solve returns
	// Ctx.Err() (wrapped) once the context is done. Carried in the
	// options struct so it threads through the nested solver helpers
	// without widening every signature.
	Ctx context.Context
	// Progress, when non-nil, observes solver sweeps (stage "steady",
	// "absorb", "fpt" or "transient"; Round is the sweep number,
	// Residual the current max-norm delta).
	Progress engine.ProgressFunc
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.Tolerance == 0 {
		o.Tolerance = 1e-12
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 1_000_000
	}
	return o
}

// canceled returns the wrapped context error once the solve's context is
// done, nil otherwise.
func (o SolveOptions) canceled(stage string, sweep int) error {
	if err := engine.Canceled(o.Ctx); err != nil {
		return fmt.Errorf("markov: %s solve canceled at sweep %d: %w", stage, sweep, err)
	}
	return nil
}

// progressEvery is the number of solver sweeps between progress reports.
const progressEvery = 128

// ConvergenceError reports that an iterative solver did not converge.
type ConvergenceError struct {
	Iterations int
	Residual   float64
}

func (e *ConvergenceError) Error() string {
	return fmt.Sprintf("markov: no convergence after %d iterations (residual %g)", e.Iterations, e.Residual)
}

// Unwrap classifies the error as the shared no-convergence sentinel, so
// errors.Is(err, engine.ErrNoConvergence) holds.
func (e *ConvergenceError) Unwrap() error { return engine.ErrNoConvergence }

// IrreducibilityError reports that an analysis needed reachability the
// chain does not have (a state that cannot reach any target, or an
// absorbing state outside the target set).
type IrreducibilityError struct {
	State  int
	Reason string
}

func (e *IrreducibilityError) Error() string {
	return fmt.Sprintf("markov: state %d %s", e.State, e.Reason)
}

// Unwrap classifies the error as the shared irreducibility sentinel, so
// errors.Is(err, engine.ErrNotIrreducible) holds.
func (e *IrreducibilityError) Unwrap() error { return engine.ErrNotIrreducible }

// SteadyState computes the limiting distribution of the chain started in
// the initial state. Transient states receive probability zero; when the
// chain has several bottom strongly connected components (BSCCs), their
// stationary distributions are weighted by the probability of absorption
// into each BSCC from the initial state.
func (c *CTMC) SteadyState(opts SolveOptions) ([]float64, error) {
	opts = opts.withDefaults()
	n := c.numStates
	if n == 0 {
		return nil, fmt.Errorf("markov: empty chain")
	}
	bsccs := c.bsccs()
	if len(bsccs) == 0 {
		return nil, fmt.Errorf("markov: no bottom component (internal error)")
	}

	pi := make([]float64, n)
	if len(bsccs) == 1 {
		local, err := c.stationaryWithin(bsccs[0], opts)
		if err != nil {
			return nil, err
		}
		for i, s := range bsccs[0] {
			pi[s] = local[i]
		}
		return pi, nil
	}

	// Multiple BSCCs: weight each stationary distribution by the
	// absorption probability from the initial state.
	weights, err := c.absorptionProbabilities(bsccs, opts)
	if err != nil {
		return nil, err
	}
	for bi, members := range bsccs {
		if weights[bi] == 0 {
			continue
		}
		local, err := c.stationaryWithin(members, opts)
		if err != nil {
			return nil, err
		}
		for i, s := range members {
			pi[s] += weights[bi] * local[i]
		}
	}
	return pi, nil
}

// stationaryWithin solves the stationary distribution restricted to one
// BSCC using Gauss–Seidel on the balance equations
//
//	pi_j * E_j = sum_i pi_i * rate(i->j),
//
// renormalizing every sweep. An absorbing singleton gets probability 1.
func (c *CTMC) stationaryWithin(members []int, opts SolveOptions) ([]float64, error) {
	m := len(members)
	if m == 1 {
		return []float64{1}, nil
	}
	indexOf := make(map[int]int, m)
	for i, s := range members {
		indexOf[s] = i
	}
	// Incoming transitions restricted to the component.
	type inEdge struct {
		from int // local index
		rate float64
	}
	in := make([][]inEdge, m)
	exit := make([]float64, m)
	for i, s := range members {
		exit[i] = c.exitRate[s]
		c.EachFrom(s, func(t Transition) {
			j, ok := indexOf[t.Dst]
			if !ok {
				return // cannot happen in a BSCC, defensive
			}
			in[j] = append(in[j], inEdge{i, t.Rate})
		})
	}
	pi := make([]float64, m)
	for i := range pi {
		pi[i] = 1 / float64(m)
	}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		if err := opts.canceled("steady", iter); err != nil {
			return nil, err
		}
		maxDelta := 0.0
		for j := 0; j < m; j++ {
			if exit[j] == 0 {
				continue // absorbing state inside a BSCC of size>1 is impossible
			}
			sum := 0.0
			for _, e := range in[j] {
				sum += pi[e.from] * e.rate
			}
			next := sum / exit[j]
			if d := math.Abs(next - pi[j]); d > maxDelta {
				maxDelta = d
			}
			pi[j] = next
		}
		// Normalize.
		total := 0.0
		for _, p := range pi {
			total += p
		}
		if total <= 0 {
			return nil, fmt.Errorf("markov: stationary iteration degenerated")
		}
		for j := range pi {
			pi[j] /= total
		}
		if iter%progressEvery == 0 {
			opts.Progress.Report(engine.Progress{Stage: "steady", States: m, Round: iter, Residual: maxDelta})
		}
		if maxDelta < opts.Tolerance {
			return pi, nil
		}
	}
	return nil, &ConvergenceError{opts.MaxIterations, math.NaN()}
}

// absorptionProbabilities computes, for each BSCC, the probability that
// the chain started in the initial state is absorbed into it, by solving
// the linear system over transient states with Gauss–Seidel on the
// embedded jump chain.
func (c *CTMC) absorptionProbabilities(bsccs [][]int, opts SolveOptions) ([]float64, error) {
	n := c.numStates
	inBSCC := make([]int, n)
	for i := range inBSCC {
		inBSCC[i] = -1
	}
	for bi, members := range bsccs {
		for _, s := range members {
			inBSCC[s] = bi
		}
	}
	weights := make([]float64, len(bsccs))
	if b := inBSCC[c.initial]; b >= 0 {
		weights[b] = 1
		return weights, nil
	}
	// h[s][bi]: absorption probability from transient s — solve one
	// system per BSCC (k-1 systems suffice, but clarity wins).
	for bi := range bsccs {
		h := make([]float64, n)
		for s := 0; s < n; s++ {
			if inBSCC[s] == bi {
				h[s] = 1
			}
		}
		for iter := 0; iter < opts.MaxIterations; iter++ {
			if err := opts.canceled("absorb", iter); err != nil {
				return nil, err
			}
			maxDelta := 0.0
			for s := 0; s < n; s++ {
				if inBSCC[s] >= 0 {
					continue
				}
				sum := 0.0
				c.EachFrom(s, func(t Transition) {
					sum += t.Rate * h[t.Dst]
				})
				next := sum / c.exitRate[s] // transient states have exits
				if d := math.Abs(next - h[s]); d > maxDelta {
					maxDelta = d
				}
				h[s] = next
			}
			if maxDelta < opts.Tolerance {
				break
			}
			if iter == opts.MaxIterations-1 {
				return nil, &ConvergenceError{opts.MaxIterations, maxDelta}
			}
		}
		weights[bi] = h[c.initial]
	}
	// Normalize tiny numerical drift.
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total > 0 {
		for i := range weights {
			weights[i] /= total
		}
	}
	return weights, nil
}

// Throughput returns the steady-state occurrence rate of transitions whose
// label satisfies pred: sum over matching transitions of pi(src)*rate.
func (c *CTMC) Throughput(pi []float64, pred func(label string) bool) float64 {
	total := 0.0
	for _, t := range c.trans {
		if pred(t.Label) {
			total += pi[t.Src] * t.Rate
		}
	}
	return total
}

// ExpectedReward returns the steady-state expectation of a state reward
// vector.
func ExpectedReward(pi, reward []float64) float64 {
	total := 0.0
	for i, p := range pi {
		total += p * reward[i]
	}
	return total
}

// ExpectedTimeToAbsorption returns, for every state, the expected time
// until one of the target states is first reached (0 on targets). It
// returns an error if some state cannot reach a target (infinite
// expectation) — callers should trim to relevant states first.
func (c *CTMC) ExpectedTimeToAbsorption(targets []int, opts SolveOptions) ([]float64, error) {
	opts = opts.withDefaults()
	n := c.numStates
	isTarget := make([]bool, n)
	for _, s := range targets {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("markov: target %d out of range", s)
		}
		isTarget[s] = true
	}
	// Reachability check (backwards from targets, over the shared
	// transposed rate matrix).
	canReach := make([]bool, n)
	tin := c.incoming()
	var stack []int
	for s := range isTarget {
		if isTarget[s] {
			canReach[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		srcs, _ := tin.Row(s)
		for _, src := range srcs {
			if !canReach[src] {
				canReach[src] = true
				stack = append(stack, int(src))
			}
		}
	}
	for s := 0; s < n; s++ {
		if !canReach[s] {
			return nil, &IrreducibilityError{s, "cannot reach any target (infinite expected time)"}
		}
		if !isTarget[s] && c.exitRate[s] == 0 {
			return nil, &IrreducibilityError{s, "is absorbing but not a target"}
		}
	}

	h := make([]float64, n)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		if err := opts.canceled("fpt", iter); err != nil {
			return nil, err
		}
		maxDelta := 0.0
		for s := 0; s < n; s++ {
			if isTarget[s] {
				continue
			}
			sum := 0.0
			c.EachFrom(s, func(t Transition) {
				sum += t.Rate * h[t.Dst]
			})
			next := (1 + sum) / c.exitRate[s]
			if d := math.Abs(next - h[s]); d > maxDelta {
				maxDelta = d
			}
			h[s] = next
		}
		if iter%progressEvery == 0 {
			opts.Progress.Report(engine.Progress{Stage: "fpt", States: n, Round: iter, Residual: maxDelta})
		}
		if maxDelta < opts.Tolerance {
			return h, nil
		}
	}
	return nil, &ConvergenceError{opts.MaxIterations, math.NaN()}
}
