package markov

import (
	"math"
	"math/rand"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (tol %g)", what, got, want, tol)
	}
}

// mm1k builds an M/M/1/K queue as a birth-death CTMC.
func mm1k(lambda, mu float64, k int) *CTMC {
	c := NewCTMC(k + 1)
	for i := 0; i < k; i++ {
		c.MustAdd(i, i+1, lambda, "arrive")
		c.MustAdd(i+1, i, mu, "serve")
	}
	return c
}

// mm1kAnalytic returns the analytic stationary distribution.
func mm1kAnalytic(lambda, mu float64, k int) []float64 {
	rho := lambda / mu
	pi := make([]float64, k+1)
	total := 0.0
	for i := 0; i <= k; i++ {
		pi[i] = math.Pow(rho, float64(i))
		total += pi[i]
	}
	for i := range pi {
		pi[i] /= total
	}
	return pi
}

func TestTwoStateSteadyState(t *testing.T) {
	// 0 -(a)-> 1, 1 -(b)-> 0: pi = (b, a)/(a+b).
	c := NewCTMC(2)
	c.MustAdd(0, 1, 3, "")
	c.MustAdd(1, 0, 1, "")
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, pi[0], 0.25, 1e-9, "pi[0]")
	almost(t, pi[1], 0.75, 1e-9, "pi[1]")
}

func TestMM1KMatchesAnalytic(t *testing.T) {
	for _, cfg := range []struct {
		lambda, mu float64
		k          int
	}{
		{1, 2, 5}, {2, 2, 8}, {3, 2, 4}, {0.5, 4, 10},
	} {
		c := mm1k(cfg.lambda, cfg.mu, cfg.k)
		pi, err := c.SteadyState(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := mm1kAnalytic(cfg.lambda, cfg.mu, cfg.k)
		for i := range want {
			almost(t, pi[i], want[i], 1e-8, "pi")
		}
		// Throughput of "serve" equals effective arrival rate
		// lambda*(1-pi[K]).
		thr := c.Throughput(pi, func(l string) bool { return l == "serve" })
		almost(t, thr, cfg.lambda*(1-pi[cfg.k]), 1e-8, "serve throughput")
	}
}

func TestSteadyStateSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		c := NewCTMC(n)
		// Ring plus random chords keeps the chain irreducible.
		for i := 0; i < n; i++ {
			c.MustAdd(i, (i+1)%n, 0.5+rng.Float64()*4, "")
		}
		for e := 0; e < n; e++ {
			c.MustAdd(rng.Intn(n), rng.Intn(n), 0.5+rng.Float64()*4, "")
		}
		pi, err := c.SteadyState(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range pi {
			sum += p
		}
		almost(t, sum, 1, 1e-9, "sum pi")
		// Global balance at every state.
		for j := 0; j < n; j++ {
			in := 0.0
			c.EachTransition(func(tr Transition) {
				if tr.Dst == j {
					in += pi[tr.Src] * tr.Rate
				}
			})
			almost(t, pi[j]*c.ExitRate(j), in, 1e-7, "balance")
		}
	}
}

func TestMultipleBSCCs(t *testing.T) {
	// 0 splits to absorbing BSCC {1} (rate 1) and BSCC {2,3} (rate 3).
	c := NewCTMC(4)
	c.MustAdd(0, 1, 1, "")
	c.MustAdd(0, 2, 3, "")
	c.MustAdd(2, 3, 1, "")
	c.MustAdd(3, 2, 1, "")
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, pi[0], 0, 1e-12, "transient state")
	almost(t, pi[1], 0.25, 1e-9, "absorbing state")
	almost(t, pi[2], 0.375, 1e-9, "pi[2]")
	almost(t, pi[3], 0.375, 1e-9, "pi[3]")
}

func TestTransientTwoState(t *testing.T) {
	// Known closed form for a 2-state chain with rates a (0->1), b (1->0):
	// p01(t) = a/(a+b) * (1 - exp(-(a+b)t)).
	a, b := 2.0, 1.0
	c := NewCTMC(2)
	c.MustAdd(0, 1, a, "")
	c.MustAdd(1, 0, b, "")
	for _, tm := range []float64{0, 0.1, 0.5, 1, 3, 10} {
		pi, err := c.Transient(tm, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := a / (a + b) * (1 - math.Exp(-(a+b)*tm))
		almost(t, pi[1], want, 1e-9, "p01")
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	c := mm1k(1, 2, 5)
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := c.Transient(200, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		almost(t, pt[i], pi[i], 1e-6, "transient->steady")
	}
}

func TestTransientLargeQ(t *testing.T) {
	// Large uniformization constant exercises the windowed Poisson path.
	c := NewCTMC(2)
	c.MustAdd(0, 1, 500, "")
	c.MustAdd(1, 0, 500, "")
	pi, err := c.Transient(5, SolveOptions{}) // q = 500*1.02*5 = 2550
	if err != nil {
		t.Fatal(err)
	}
	almost(t, pi[0], 0.5, 1e-6, "pi[0] at large q")
}

func TestAbsorptionTimeErlang(t *testing.T) {
	// A chain of k exponential phases rate r: expected absorption k/r.
	k, r := 5, 2.0
	c := NewCTMC(k + 1)
	for i := 0; i < k; i++ {
		c.MustAdd(i, i+1, r, "")
	}
	h, err := c.ExpectedTimeToAbsorption([]int{k}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, h[0], float64(k)/r, 1e-9, "Erlang mean")
	almost(t, h[k], 0, 0, "target state")
}

func TestAbsorptionTimeWithBranching(t *testing.T) {
	// 0 -> 1 (rate 1) or 0 -> 2 (rate 1); 1 -> 2 rate 2.
	// h2=0, h1=1/2, h0 = 1/2 + (1/2)h1 + (1/2)h2 = 1/2+1/4 = 0.75.
	c := NewCTMC(3)
	c.MustAdd(0, 1, 1, "")
	c.MustAdd(0, 2, 1, "")
	c.MustAdd(1, 2, 2, "")
	h, err := c.ExpectedTimeToAbsorption([]int{2}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, h[0], 0.75, 1e-9, "h0")
}

func TestAbsorptionUnreachableError(t *testing.T) {
	c := NewCTMC(3)
	c.MustAdd(0, 1, 1, "")
	// State 2 is a target but 0,1 cannot reach it; 1 is absorbing.
	if _, err := c.ExpectedTimeToAbsorption([]int{2}, SolveOptions{}); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

func TestSimulationAgreesWithSteadyState(t *testing.T) {
	c := mm1k(1.5, 2, 4)
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	occ := c.Simulate(rand.New(rand.NewSource(99)), 200000)
	for i := range pi {
		almost(t, occ[i], pi[i], 0.01, "simulated occupancy")
	}
}

func TestAddValidation(t *testing.T) {
	c := NewCTMC(2)
	if err := c.Add(0, 5, 1, ""); err == nil {
		t.Error("out of range accepted")
	}
	if err := c.Add(0, 1, -1, ""); err == nil {
		t.Error("negative rate accepted")
	}
	if err := c.Add(0, 1, 0, ""); err == nil {
		t.Error("zero rate accepted")
	}
	if err := c.Add(0, 1, math.Inf(1), ""); err == nil {
		t.Error("infinite rate accepted")
	}
	if err := c.Add(0, 0, 1, ""); err != nil {
		t.Error("self loop should be silently dropped, not an error")
	}
	if c.NumTransitions() != 0 {
		t.Error("self loop stored")
	}
}

func TestEmptyChainErrors(t *testing.T) {
	c := NewCTMC(0)
	if _, err := c.SteadyState(SolveOptions{}); err == nil {
		t.Error("empty chain steady state accepted")
	}
	if _, err := c.Transient(1, SolveOptions{}); err == nil {
		t.Error("empty chain transient accepted")
	}
}

func TestAbsorbingChainSteadyState(t *testing.T) {
	// Chain that surely ends in the absorbing state 1.
	c := NewCTMC(2)
	c.MustAdd(0, 1, 1, "")
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, pi[0], 0, 1e-12, "transient")
	almost(t, pi[1], 1, 1e-12, "absorbing")
}

func TestExpectedReward(t *testing.T) {
	pi := []float64{0.25, 0.75}
	rew := []float64{0, 4}
	almost(t, ExpectedReward(pi, rew), 3, 1e-12, "reward")
}

func TestTransientInvalidTime(t *testing.T) {
	c := NewCTMC(1)
	if _, err := c.Transient(-1, SolveOptions{}); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := c.Transient(math.NaN(), SolveOptions{}); err == nil {
		t.Error("NaN time accepted")
	}
}

func TestLittlesLawOnMM1K(t *testing.T) {
	// L = lambda_eff * W: mean queue length equals effective arrival
	// rate times mean sojourn (cross-check between steady state and
	// absorption-time machinery is indirect; here verify L from pi).
	lambda, mu, k := 1.0, 2.0, 6
	c := mm1k(lambda, mu, k)
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	L := 0.0
	for i, p := range pi {
		L += float64(i) * p
	}
	lambdaEff := lambda * (1 - pi[k])
	// W from M/M/1/K closed form: W = L / lambda_eff; sanity: positive
	// and finite, L < k.
	if L <= 0 || L >= float64(k) {
		t.Fatalf("L = %g out of range", L)
	}
	W := L / lambdaEff
	if W <= 0.5 { // must exceed service time 1/mu = 0.5
		t.Fatalf("W = %g should exceed 1/mu", W)
	}
}
