// SCC-topological block solvers. The legacy absorption and
// first-passage paths (steady.go) iterate global fixed-point sweeps over
// the whole state space until the slowest component converges. The block
// path here decomposes the chain into strongly connected components once
// (sparse.SCCs, reverse topological order), then solves each component's
// linear system in isolation: by the time a component is visited, every
// state it can reach outside itself is already solved, so its
// contribution moves to the right-hand side and the component system is
// small, nonsingular and diagonally dominant. Each block is solved by
// the method the options select (BiCGSTAB for large blocks, Gauss–Seidel
// for small under auto), with damped-Jacobi fallback on Krylov
// breakdown. One scratch set is reused across all blocks of a solve.
package markov

import (
	"math"

	"multival/internal/engine"
	"multival/internal/sparse"
)

// blockScratch reuses every allocation of a block-structured solve
// across blocks and systems: the Krylov work vectors plus the compacted
// right-hand side, solution, sweep double-buffer and skip mask of the
// current block. The zero value is ready; buffers grow to the largest
// block seen.
type blockScratch struct {
	ks   sparse.KrylovScratch
	x    []float64
	rhs  []float64
	diag []float64
	next []float64
	skip []bool
	mi   []int
}

// grow sizes the per-block buffers for a block of n states and returns
// them (x, rhs, diag, next, skip). skip is always all-false: the block
// systems compact boundary states away instead of masking them.
func (bs *blockScratch) grow(n int) (x, rhs, diag, next []float64, skip []bool) {
	if cap(bs.x) < n {
		bs.x = make([]float64, n)
		bs.rhs = make([]float64, n)
		bs.diag = make([]float64, n)
		bs.next = make([]float64, n)
		bs.skip = make([]bool, n)
	}
	return bs.x[:n], bs.rhs[:n], bs.diag[:n], bs.next[:n], bs.skip[:n]
}

// members widens an SCC member list to the []int form Submatrix takes,
// reusing one buffer.
func (bs *blockScratch) members(comp []int32) []int {
	if cap(bs.mi) < len(comp) {
		bs.mi = make([]int, len(comp))
	}
	mi := bs.mi[:len(comp)]
	for i, s := range comp {
		mi[i] = int(s)
	}
	return mi
}

// solveBlock solves the hitting-type system (diag − sub) x = rhs for one
// block, dispatching on the options' method for the block size: BiCGSTAB
// (falling back to damped Jacobi sweeps on breakdown or stall) or
// Gauss–Seidel sweeps. x carries the initial guess in and the solution
// out. opts must already have defaults applied.
func solveBlock(sub *sparse.Matrix, diag, rhs, x []float64, stage string, opts SolveOptions, bs *blockScratch) error {
	n := len(x)
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	method := opts.blockMethod(n)
	fallback := ""
	useJacobi := false
	if method == MethodBiCGSTAB {
		probe := func(iter int, res float64) error {
			if err := opts.canceled(stage, iter); err != nil {
				return err
			}
			if iter%progressEvery == 0 {
				opts.Progress.Report(engine.Progress{Stage: stage, States: n, Round: iter, Residual: res})
			}
			return nil
		}
		st, _, _, err := sparse.BiCGSTAB(sub, diag, rhs, x, opts.Tolerance, krylovMaxIter(opts, n), workers, &bs.ks, probe)
		if err != nil {
			return err
		}
		if st == sparse.KrylovConverged {
			return nil
		}
		// Breakdown or stall: restart the semiconvergent damped-Jacobi
		// sweeps from a zero guess (the partial Krylov iterate may be
		// arbitrarily far off after a breakdown).
		nFallbackKrylovJacobi.Add(1)
		fallback = string(MethodJacobi)
		useJacobi = true
		for i := range x {
			x[i] = 0
		}
	}

	skip := bs.skip[:n]
	cur, next := x, bs.next[:n]
	residual := math.Inf(1)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		if err := opts.canceled(stage, iter); err != nil {
			return err
		}
		if useJacobi {
			residual = sparse.HittingSweepJacobi(sub, skip, rhs, diag, cur, next, workers)
			cur, next = next, cur
		} else {
			residual = sparse.HittingSweepGS(sub, skip, rhs, diag, cur)
		}
		if iter%progressEvery == 0 {
			opts.Progress.Report(engine.Progress{Stage: stage, States: n, Round: iter, Residual: residual})
		}
		if residual < opts.Tolerance {
			if &cur[0] != &x[0] {
				copy(x, cur)
			}
			return nil
		}
	}
	return &ConvergenceError{Iterations: opts.MaxIterations, Residual: residual, Method: string(method), Fallback: fallback}
}

// absorptionBlocks computes the per-BSCC absorption probabilities from
// the initial state by solving ONE adjoint system instead of one
// hitting system per BSCC. The expected-visits vector y solves the
// transposed system
//
//	(diag(E) − T)ᵀ y = e_init   over transient states,
//
// so y[s] = e_initᵀ(diag(E)−T)⁻¹e_s and the absorption probability into
// BSCC bi is the single inner product yᵀr_bi, where r_bi[s] = Σ_{d∈bi}
// rate(s→d) — all k weights fall out of the same solve. comps/compOf is
// the SCCs() decomposition of the rate matrix and bsccs its bottoms.
// Components are in reverse topological order (cross-component edges
// point to lower indices), which TRANSPOSED edges traverse upward — so
// the adjoint blocks are solved descending from the initial state's
// component, and reachability from the initial state settles in the
// same descending pass (unreachable components keep y = 0 and are
// skipped).
func (c *CTMC) absorptionBlocks(bsccs [][]int, comps [][]int32, compOf []int32, opts SolveOptions) ([]float64, error) {
	n := c.numStates
	k := len(bsccs)
	weights := make([]float64, k)
	inBSCC := make([]int, n)
	for i := range inBSCC {
		inBSCC[i] = -1
	}
	for bi, members := range bsccs {
		for _, s := range members {
			inBSCC[s] = bi
		}
	}
	if b := inBSCC[c.initial]; b >= 0 {
		weights[b] = 1
		return weights, nil
	}
	mat := c.matrix()
	tin := c.incoming()
	isBottom := make([]bool, len(comps))
	for _, members := range bsccs {
		isBottom[compOf[members[0]]] = true
	}
	ci0 := int(compOf[c.initial])
	reach := make([]bool, len(comps))
	reach[ci0] = true
	y := make([]float64, n)
	var bs blockScratch
	block := 0
	for ci := ci0; ci >= 0; ci-- {
		if !reach[ci] {
			continue
		}
		members := comps[ci]
		if !isBottom[ci] {
			if len(members) == 1 {
				// Singleton transient component (no self-loops by
				// construction): every upstream source is already
				// solved.
				s := int(members[0])
				sum := 0.0
				if s == c.initial {
					sum = 1
				}
				cols, vals := tin.Row(s)
				for p, src := range cols {
					sum += vals[p] * y[src]
				}
				y[s] = sum / c.exitRate[s]
			} else {
				// The block's transposed system: the in-component
				// incoming submatrix IS the transpose of the block, and
				// transposition preserves the diagonal, so the exit
				// rates stay the preconditioner.
				mi := bs.members(members)
				subT := tin.Submatrix(mi)
				x, rhs, diag, _, _ := bs.grow(len(mi))
				for i, s := range mi {
					diag[i] = c.exitRate[s]
					sum := 0.0
					if s == c.initial {
						sum = 1
					}
					cols, vals := tin.Row(s)
					for p, src := range cols {
						if compOf[src] != int32(ci) {
							sum += vals[p] * y[src]
						}
					}
					rhs[i] = sum
					x[i] = 0
				}
				if err := solveBlock(subT, diag, rhs, x, "absorb", opts, &bs); err != nil {
					return nil, err
				}
				for i, s := range mi {
					y[s] = x[i]
				}
			}
			opts.Progress.Report(engine.Progress{Stage: "absorb", States: len(members), Round: block, Done: false})
			block++
		}
		// Propagate reachability along the original (downward) edges;
		// bottoms have none, so only transient components spread marks.
		for _, s := range members {
			cols, _ := mat.Row(int(s))
			for _, d := range cols {
				reach[compOf[d]] = true
			}
		}
	}
	// weights[bi] = yᵀr_bi: fold every transient state's rates into the
	// bottoms it feeds, weighted by its expected-visits mass.
	for ci := 0; ci <= ci0; ci++ {
		if !reach[ci] || isBottom[ci] {
			continue
		}
		for _, s32 := range comps[ci] {
			s := int(s32)
			ys := y[s]
			if ys == 0 {
				continue
			}
			cols, vals := mat.Row(s)
			for p, d := range cols {
				if bi := inBSCC[d]; bi >= 0 {
					weights[bi] += ys * vals[p]
				}
			}
		}
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			// Tiny negative Krylov residue; the true weight is ≥ 0.
			weights[i] = 0
			continue
		}
		total += w
	}
	if total > 0 {
		for i := range weights {
			weights[i] /= total
		}
	}
	return weights, nil
}

// stronglyConnectedAll reports whether the chain is one strongly
// connected component: a forward BFS over the rate matrix and a backward
// BFS over its transpose, both from state 0, must each cover every
// state. Two flat CSR passes are far cheaper than the full Tarjan
// decomposition they stand in for, and the transpose they touch is the
// cached incoming view the stationary solve reads anyway.
func (c *CTMC) stronglyConnectedAll() bool {
	n := c.numStates
	if n == 1 {
		return true
	}
	return coversAll(c.matrix(), n) && coversAll(c.incoming(), n)
}

// coversAll reports whether a depth-first sweep from state 0 over m
// visits all n states.
func coversAll(m *sparse.Matrix, n int) bool {
	seen := make([]bool, n)
	seen[0] = true
	count := 1
	stack := make([]int32, 1, 64)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cols, _ := m.Row(int(s))
		for _, d := range cols {
			if !seen[d] {
				seen[d] = true
				count++
				stack = append(stack, d)
			}
		}
	}
	return count == n
}

// hittingBlocks solves the expected-time-to-absorption system
// block-by-block over the SCC decomposition: h[s] = (1 + Σ rate(s→d)
// h[d]) / E_s on non-targets, 0 on targets. Reachability of the targets
// from every state has already been verified by the caller, so every
// block system leaks (toward a target or an earlier component) and is
// nonsingular.
func (c *CTMC) hittingBlocks(isTarget []bool, opts SolveOptions) ([]float64, error) {
	n := c.numStates
	mat := c.matrix()
	comps, compOf := mat.SCCs()
	h := make([]float64, n)
	var bs blockScratch
	free := make([]int, 0, 64)
	block := 0
	for ci := range comps {
		members := comps[ci]
		free = free[:0]
		for _, s := range members {
			if !isTarget[int(s)] {
				free = append(free, int(s))
			}
		}
		if len(free) == 0 {
			continue
		}
		if len(free) == 1 && len(members) == 1 {
			s := free[0]
			cols, vals := mat.Row(s)
			sum := 1.0
			for p, d := range cols {
				sum += vals[p] * h[d]
			}
			h[s] = sum / c.exitRate[s]
		} else {
			sub := mat.Submatrix(free)
			x, rhs, diag, _, _ := bs.grow(len(free))
			for i, s := range free {
				diag[i] = c.exitRate[s]
				sum := 1.0
				cols, vals := mat.Row(s)
				for p, d := range cols {
					// In-component targets contribute h = 0 and are
					// compacted away; everything out of component is
					// already solved.
					if compOf[d] != int32(ci) {
						sum += vals[p] * h[d]
					}
				}
				rhs[i] = sum
				x[i] = 0
			}
			if err := solveBlock(sub, diag, rhs, x, "fpt", opts, &bs); err != nil {
				return nil, err
			}
			for i, s := range free {
				h[s] = x[i]
			}
		}
		opts.Progress.Report(engine.Progress{Stage: "fpt", States: len(free), Round: block})
		block++
	}
	return h, nil
}

// stationaryKrylov attempts the BSCC stationary solve by rank-one
// deflation + BiCGSTAB: pinning the first local state's unnormalized
// probability at 1 turns the singular balance system into the
// nonsingular column-dominant system
//
//	(diag(exit) − tin′) x = tin·e₀   restricted to locals 1..m−1,
//
// whose solution is x_j = pi_j/pi_0; the result is normalized to a
// distribution. Returns ok=false (after counting the fallback) when the
// kernel breaks down, stalls, or produces a solution with meaningfully
// negative entries — the caller then runs the sweep path.
func stationaryKrylov(sub, tin *sparse.Matrix, exit []float64, opts SolveOptions, bs *blockScratch) (pi []float64, ok bool, err error) {
	m := sub.N()
	rest := make([]int, m-1)
	for i := range rest {
		rest[i] = i + 1
	}
	tinD := tin.Submatrix(rest)
	x, rhs, diag, _, _ := bs.grow(m - 1)
	for j := 1; j < m; j++ {
		diag[j-1] = exit[j]
		rhs[j-1] = 0
		x[j-1] = 1
	}
	cols, vals := sub.Row(0)
	for p, cl := range cols {
		rhs[cl-1] += vals[p]
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	probe := func(iter int, res float64) error {
		if perr := opts.canceled("steady", iter); perr != nil {
			return perr
		}
		if iter%progressEvery == 0 {
			opts.Progress.Report(engine.Progress{Stage: "steady", States: m, Round: iter, Residual: res})
		}
		return nil
	}
	st, _, _, err := sparse.BiCGSTAB(tinD, diag, rhs, x, opts.Tolerance, krylovMaxIter(opts, m-1), workers, &bs.ks, probe)
	if err != nil {
		return nil, false, err
	}
	if st != sparse.KrylovConverged {
		nFallbackKrylovJacobi.Add(1)
		return nil, false, nil
	}
	scale := 1.0
	for _, v := range x {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	pi = make([]float64, m)
	pi[0] = 1
	total := 1.0
	for j := 1; j < m; j++ {
		v := x[j-1]
		if v < 0 {
			if v < -1e-9*scale {
				// A genuinely negative ratio means the solve is
				// unreliable (ill-conditioned deflation); fall back.
				nFallbackKrylovJacobi.Add(1)
				return nil, false, nil
			}
			v = 0
		}
		pi[j] = v
		total += v
	}
	if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		nFallbackKrylovJacobi.Add(1)
		return nil, false, nil
	}
	for j := range pi {
		pi[j] /= total
	}
	return pi, true, nil
}

// biasKrylov attempts the Poisson equation by the same deflation:
// pinning h at 0 on one recurrent reference state makes the system over
// the remaining states nonsingular (the chain is unichain with no
// absorbing states when this path runs), so one Krylov solve replaces
// the damped sweep iteration. The result is shifted to the h[initial]=0
// convention of the sweep path. Returns ok=false after counting the
// fallback when the kernel does not converge.
func (c *CTMC) biasKrylov(reward []float64, gain float64, ref int, opts SolveOptions) (h []float64, ok bool, err error) {
	n := c.numStates
	mat := c.matrix()
	var bs blockScratch
	free := make([]int, 0, n-1)
	for s := 0; s < n; s++ {
		if s != ref {
			free = append(free, s)
		}
	}
	sub := mat.Submatrix(free)
	x, rhs, diag, _, _ := bs.grow(n - 1)
	for i, s := range free {
		diag[i] = c.exitRate[s]
		rhs[i] = reward[s] - gain
		x[i] = 0
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	probe := func(iter int, res float64) error {
		if perr := opts.canceled("bias", iter); perr != nil {
			return perr
		}
		if iter%progressEvery == 0 {
			opts.Progress.Report(engine.Progress{Stage: "bias", States: n, Round: iter, Residual: res})
		}
		return nil
	}
	st, _, _, err := sparse.BiCGSTAB(sub, diag, rhs, x, opts.Tolerance, krylovMaxIter(opts, n-1), workers, &bs.ks, probe)
	if err != nil {
		return nil, false, err
	}
	if st != sparse.KrylovConverged {
		nFallbackKrylovJacobi.Add(1)
		return nil, false, nil
	}
	h = make([]float64, n)
	for i, s := range free {
		h[s] = x[i]
	}
	shift := h[c.initial]
	for s := range h {
		h[s] -= shift
	}
	return h, true, nil
}
