package markov

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randChain generates a random irreducible CTMC (ring backbone plus
// random chords).
type randChain struct{ C *CTMC }

func (randChain) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 2 + rng.Intn(14)
	c := NewCTMC(n)
	for i := 0; i < n; i++ {
		c.MustAdd(i, (i+1)%n, 0.2+4*rng.Float64(), "ring")
	}
	extra := rng.Intn(2 * n)
	for e := 0; e < extra; e++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src != dst {
			c.MustAdd(src, dst, 0.2+4*rng.Float64(), "chord")
		}
	}
	c.SetInitial(rng.Intn(n))
	return reflect.ValueOf(randChain{c})
}

func qcfg() *quick.Config {
	return &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}
}

func TestQuickSteadyStateIsDistribution(t *testing.T) {
	prop := func(r randChain) bool {
		pi, err := r.C.SteadyState(SolveOptions{})
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range pi {
			if p < -1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-8
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickGlobalBalance(t *testing.T) {
	prop := func(r randChain) bool {
		pi, err := r.C.SteadyState(SolveOptions{})
		if err != nil {
			return false
		}
		for j := 0; j < r.C.NumStates(); j++ {
			in := 0.0
			r.C.EachTransition(func(tr Transition) {
				if tr.Dst == j {
					in += pi[tr.Src] * tr.Rate
				}
			})
			if math.Abs(pi[j]*r.C.ExitRate(j)-in) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickTransientIsDistribution(t *testing.T) {
	prop := func(r randChain, tRaw uint8) bool {
		tm := float64(tRaw) / 16
		pi, err := r.C.Transient(tm, SolveOptions{})
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range pi {
			if p < -1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-8
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickTransientConvergence(t *testing.T) {
	prop := func(r randChain) bool {
		pi, err := r.C.SteadyState(SolveOptions{})
		if err != nil {
			return false
		}
		// Mixing time scales with 1/minRate; use a generous horizon.
		pt, err := r.C.Transient(500/r.C.MaxExitRate()*float64(r.C.NumStates()), SolveOptions{})
		if err != nil {
			return false
		}
		for i := range pi {
			if math.Abs(pi[i]-pt[i]) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickThroughputConservation(t *testing.T) {
	// Total throughput of all transitions equals sum_s pi_s * exit(s).
	prop := func(r randChain) bool {
		pi, err := r.C.SteadyState(SolveOptions{})
		if err != nil {
			return false
		}
		all := r.C.Throughput(pi, func(string) bool { return true })
		expect := 0.0
		for s := 0; s < r.C.NumStates(); s++ {
			expect += pi[s] * r.C.ExitRate(s)
		}
		return math.Abs(all-expect) < 1e-8
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickAbsorptionTimePositive(t *testing.T) {
	// On a random chain with one state made absorbing-target, hitting
	// times are positive for non-target states (target reachable since
	// the ring backbone is strongly connected).
	prop := func(r randChain, which uint8) bool {
		target := int(which) % r.C.NumStates()
		h, err := r.C.ExpectedTimeToAbsorption([]int{target}, SolveOptions{})
		if err != nil {
			return false
		}
		for s, v := range h {
			if s == target {
				if v != 0 {
					return false
				}
				continue
			}
			if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}
