package markov

import (
	"fmt"
	"sync/atomic"
)

// Method selects the linear-solver kernel family behind every iterative
// CTMC analysis. The zero value is MethodAuto.
type Method string

const (
	// MethodAuto (the default) picks per linear system. The nonsingular
	// hitting-type systems (absorption weights, expected first passage,
	// Poisson bias) are restructured into SCC-topological block solves,
	// and blocks of at least krylovMinStates unknowns use the BiCGSTAB
	// kernel (Gauss–Seidel sweeps below). Singular stationary balance
	// systems keep the Gauss–Seidel sweeps at every size — on an
	// irreducible chain those converge in tens of sweeps, which no
	// Krylov iteration count beats — and take their speedup from setup
	// elimination instead: two BFS passes replace the Tarjan
	// decomposition when the chain is one component, and a BSCC covering
	// the whole chain skips the submatrix compaction.
	MethodAuto Method = "auto"
	// MethodGS forces the legacy sweep path exactly as it ran before the
	// Krylov kernels existed: global Gauss–Seidel sweeps (damped Jacobi
	// when Workers > 1), no block restructuring. The retained
	// differential reference.
	MethodGS Method = "gs"
	// MethodJacobi forces damped Jacobi sweeps on the legacy global
	// structure (the parallel kernel, sequential when Workers <= 1).
	MethodJacobi Method = "jacobi"
	// MethodBiCGSTAB forces the Krylov kernel on every system regardless
	// of size, with the SCC-topological block restructuring; breakdown
	// or stagnation falls back to damped Jacobi sweeps per system.
	MethodBiCGSTAB Method = "bicgstab"
)

// ParseMethod normalizes and validates a solver-method name. The empty
// string and "auto" both select MethodAuto.
func ParseMethod(s string) (Method, error) {
	switch Method(s) {
	case "", MethodAuto:
		return MethodAuto, nil
	case MethodGS:
		return MethodGS, nil
	case MethodJacobi:
		return MethodJacobi, nil
	case MethodBiCGSTAB:
		return MethodBiCGSTAB, nil
	}
	return "", fmt.Errorf("markov: unknown solver method %q (want auto, gs, jacobi or bicgstab)", s)
}

// resolve applies the option defaults and validates/normalizes the
// method selection; every public solver entry point calls it once.
func (o SolveOptions) resolve() (SolveOptions, error) {
	o = o.withDefaults()
	m, err := ParseMethod(string(o.Method))
	if err != nil {
		return o, err
	}
	o.Method = m
	return o, nil
}

// krylovMinStates is the auto-selection threshold: below it the setup and
// per-iteration vector overhead of BiCGSTAB outweighs the sweep count it
// saves, so small blocks keep Gauss–Seidel.
const krylovMinStates = 128

// krylovIterCap, when positive, caps BiCGSTAB iterations below the
// options budget; tests force it to 1 to drive the fallback path on
// systems the kernel would otherwise solve.
var krylovIterCap = 0

// krylovMaxIter bounds one BiCGSTAB attempt: the options budget, but
// never more than n+300 iterations — a Krylov method that has not
// converged within the system dimension will not, and the damped-Jacobi
// fallback still has the full budget after it.
func krylovMaxIter(opts SolveOptions, n int) int {
	max := n + 300
	if opts.MaxIterations < max {
		max = opts.MaxIterations
	}
	if krylovIterCap > 0 && krylovIterCap < max {
		max = krylovIterCap
	}
	return max
}

// legacy reports whether the options force the pre-Krylov global sweep
// structure (the bit-for-bit retained reference paths).
func (o SolveOptions) legacy() bool {
	return o.Method == MethodGS || o.Method == MethodJacobi
}

// blockMethod resolves the method for one hitting-type (nonsingular)
// linear system of n unknowns; stationary balance systems consult
// opts.Method directly (auto keeps sweeps there, see MethodAuto).
func (o SolveOptions) blockMethod(n int) Method {
	if o.Method == MethodBiCGSTAB {
		return MethodBiCGSTAB
	}
	if n >= krylovMinStates {
		return MethodBiCGSTAB
	}
	return MethodGS
}

// Process-wide fallback counters: every method downgrade is counted so
// the serve layer can surface solver regressions (a chain family that
// suddenly starts breaking down shows up in GET /v1/stats).
var (
	nFallbackGSJacobi     atomic.Int64
	nFallbackKrylovJacobi atomic.Int64
)

// FallbackStats counts solver-method fallbacks since process start.
type FallbackStats struct {
	// GSToJacobi counts stationary Gauss–Seidel sweeps that stagnated
	// (sweep order fighting the cycle structure) and switched to the
	// damped Jacobi kernel.
	GSToJacobi int64
	// BiCGSTABToJacobi counts Krylov solves that broke down (rho ≈ 0) or
	// stalled and fell back to damped Jacobi sweeps.
	BiCGSTABToJacobi int64
}

// Fallbacks returns the process-wide fallback counters.
func Fallbacks() FallbackStats {
	return FallbackStats{
		GSToJacobi:       nFallbackGSJacobi.Load(),
		BiCGSTABToJacobi: nFallbackKrylovJacobi.Load(),
	}
}
