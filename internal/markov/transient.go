package markov

import (
	"fmt"
	"math"
	"math/rand"

	"multival/internal/engine"
	"multival/internal/sparse"
)

// Transient computes the state distribution at time t, starting from the
// initial state, by uniformization:
//
//	pi(t) = sum_k Poisson(L*t; k) * pi0 * P^k,  P = I + Q/L,
//
// with L slightly above the maximal exit rate. The Poisson series is
// truncated adaptively once the accumulated mass exceeds 1 - epsilon
// (epsilon = 1e-12); for large L*t the summation starts near the Poisson
// mode using logarithmic weights, in the spirit of Fox–Glynn.
func (c *CTMC) Transient(t float64, opts SolveOptions) ([]float64, error) {
	opts = opts.withDefaults()
	n := c.numStates
	if n == 0 {
		return nil, fmt.Errorf("markov: empty chain")
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("markov: invalid time %v", t)
	}
	pi := make([]float64, n)
	pi[c.initial] = 1
	if t == 0 || len(c.trans) == 0 {
		return pi, nil
	}

	lambda := c.MaxExitRate() * 1.02
	q := lambda * t
	const eps = 1e-12

	// Poisson weights via the stable recurrence from the mode.
	weights, k0 := poissonWindow(q, eps)

	// result accumulates weights[k] * pi0 P^k.
	result := make([]float64, n)
	cur := pi
	next := make([]float64, n)
	maxK := k0 + len(weights) - 1
	// The vector-matrix product reads the frozen CSR views: the scatter
	// AddApplyT sequentially, or — when opts.Workers selects parallelism
	// — the transposed per-row gather AddApply, which shards rows of the
	// output across workers without write races. The transpose is only
	// built on the parallel path.
	mat := c.matrix()
	var tin *sparse.Matrix
	if opts.parallel() {
		tin = c.incoming()
	}
	for k := 0; k <= maxK; k++ {
		if k%progressEvery == 0 {
			if err := opts.canceled("transient", k); err != nil {
				return nil, err
			}
			opts.Progress.Report(engine.Progress{Stage: "transient", States: n, Round: k})
		}
		if k >= k0 {
			w := weights[k-k0]
			for i := range result {
				result[i] += w * cur[i]
			}
		}
		if k == maxK {
			break
		}
		// next = cur * P with P = I + Q/lambda, via the shared CSR
		// rate matrix.
		for i := range next {
			next[i] = cur[i] * (1 - c.exitRate[i]/lambda)
		}
		if tin != nil {
			tin.AddApply(cur, next, 1/lambda, opts.Workers)
		} else {
			mat.AddApplyT(cur, next, 1/lambda)
		}
		cur, next = next, cur
	}
	// Normalize the truncation error.
	total := 0.0
	for _, p := range result {
		total += p
	}
	if total > 0 {
		for i := range result {
			result[i] /= total
		}
	}
	return result, nil
}

// poissonWindow returns normalized Poisson(q) weights for the index window
// [k0, k0+len-1] covering at least 1-eps of the mass.
func poissonWindow(q float64, eps float64) ([]float64, int) {
	mode := int(math.Floor(q))
	// log pmf at the mode via Stirling-stable lgamma.
	logPmf := func(k int) float64 {
		lg, _ := math.Lgamma(float64(k + 1))
		return -q + float64(k)*math.Log(q) - lg
	}
	// Expand left and right from the mode until the collected mass
	// reaches 1-eps (in normalized terms the raw pmf sums to <=1).
	lo, hi := mode, mode
	vals := map[int]float64{mode: math.Exp(logPmf(mode))}
	mass := vals[mode]
	for mass < 1-eps {
		grew := false
		if lo > 0 {
			lo--
			v := math.Exp(logPmf(lo))
			vals[lo] = v
			mass += v
			grew = true
		}
		hi++
		v := math.Exp(logPmf(hi))
		vals[hi] = v
		mass += v
		grew = true
		if !grew || hi-lo > 10_000_000 {
			break
		}
		// Stop growing a side once its tail is negligible.
		if vals[lo] < eps*1e-3 && vals[hi] < eps*1e-3 && mass > 1-eps*10 {
			break
		}
	}
	weights := make([]float64, hi-lo+1)
	total := 0.0
	for k := lo; k <= hi; k++ {
		weights[k-lo] = vals[k]
		total += vals[k]
	}
	for i := range weights {
		weights[i] /= total
	}
	return weights, lo
}

// Simulate runs a discrete-event simulation of the chain for the given
// total time and returns the empirical fraction of time spent in each
// state. Used in tests to cross-validate the numerical solvers.
func (c *CTMC) Simulate(rng *rand.Rand, horizon float64) []float64 {
	occ := make([]float64, c.numStates)
	s := c.initial
	now := 0.0
	for now < horizon {
		exit := c.exitRate[s]
		if exit == 0 {
			occ[s] += horizon - now
			break
		}
		dwell := rng.ExpFloat64() / exit
		if now+dwell > horizon {
			occ[s] += horizon - now
			break
		}
		occ[s] += dwell
		now += dwell
		// Pick the next transition proportionally to its rate.
		u := rng.Float64() * exit
		acc := 0.0
		next := s
		c.EachFrom(s, func(t Transition) {
			if acc <= u && u < acc+t.Rate {
				next = t.Dst
			}
			acc += t.Rate
		})
		s = next
	}
	for i := range occ {
		occ[i] /= horizon
	}
	return occ
}
