// Package markov implements continuous-time Markov chains (CTMCs) and the
// numerical solvers the Multival performance-evaluation flow relies on:
// steady-state distributions (Gauss–Seidel with BSCC analysis), transient
// distributions (uniformization), transition throughputs, expected
// absorption times (used for latency predictions), and a discrete-event
// simulator for cross-validation. It plays the role of BCG_STEADY and
// BCG_TRANSIENT in CADP.
//
// Transitions are accumulated as labeled triplets; solvers read them
// through the shared sparse CSR rate matrix (package sparse), which is
// frozen lazily and invalidated on mutation.
package markov

import (
	"fmt"
	"math"

	"multival/internal/sparse"
)

// Transition is a rated, optionally labeled CTMC transition.
type Transition struct {
	Src, Dst int
	Rate     float64
	Label    string // informational; used for throughput queries
}

// CTMC is a finite continuous-time Markov chain with a distinguished
// initial state.
//
// Concurrency contract: a CTMC being mutated is not safe for concurrent
// use, and neither are the lazy caches — queries freeze the CSR view on
// first access (and Add invalidates it), so even read-only methods may
// write the cache. Call Freeze() after the last Add to pre-build both CSR
// views; from then on every read-only method (EachFrom, SteadyState,
// Transient, ExpectedTimeToAbsorption, Bias, ...) is safe to call from
// several goroutines at once, as long as no Add/SetInitial runs
// concurrently. The solvers freeze internally before sharding sweeps
// across workers, so a single solve call is always race-free; Freeze
// matters when the CALLER fans one chain out to several goroutines.
type CTMC struct {
	numStates int
	initial   int
	trans     []Transition
	exitRate  []float64

	mat *sparse.Matrix // lazily frozen CSR view of trans (tag = index)
	tin *sparse.Matrix // lazily built transpose (incoming adjacency)
}

// NewCTMC creates a CTMC with n states, initial state 0.
func NewCTMC(n int) *CTMC {
	return &CTMC{
		numStates: n,
		exitRate:  make([]float64, n),
	}
}

// NumStates returns the number of states.
func (c *CTMC) NumStates() int { return c.numStates }

// NumTransitions returns the number of transitions.
func (c *CTMC) NumTransitions() int { return len(c.trans) }

// Initial returns the initial state.
func (c *CTMC) Initial() int { return c.initial }

// SetInitial sets the initial state.
func (c *CTMC) SetInitial(s int) {
	if s < 0 || s >= c.numStates {
		panic(fmt.Sprintf("markov: state %d out of range", s))
	}
	c.initial = s
}

// Add inserts a transition with the given rate (must be positive) and an
// optional label. Self-loops are ignored (they do not affect CTMC
// semantics) but still contribute to label throughput bookkeeping, so they
// are stored with rate counted out of the sojourn: to keep the generator
// well-formed we drop them and document the fact.
func (c *CTMC) Add(src, dst int, rate float64, label string) error {
	if src < 0 || src >= c.numStates || dst < 0 || dst >= c.numStates {
		return fmt.Errorf("markov: transition (%d,%d) out of range", src, dst)
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("markov: invalid rate %v", rate)
	}
	if src == dst {
		return nil
	}
	c.trans = append(c.trans, Transition{src, dst, rate, label})
	c.exitRate[src] += rate
	c.mat, c.tin = nil, nil
	return nil
}

// MustAdd is Add that panics on error, for hand-built models.
func (c *CTMC) MustAdd(src, dst int, rate float64, label string) {
	if err := c.Add(src, dst, rate, label); err != nil {
		panic(err)
	}
}

// matrix returns the frozen CSR rate matrix, building it on demand. Entry
// tags index back into the transition table, so label lookups survive the
// CSR permutation.
func (c *CTMC) matrix() *sparse.Matrix {
	if c.mat == nil {
		nnz := len(c.trans)
		rows := make([]int32, nnz)
		cols := make([]int32, nnz)
		vals := make([]float64, nnz)
		tags := make([]int32, nnz)
		for i, t := range c.trans {
			rows[i] = int32(t.Src)
			cols[i] = int32(t.Dst)
			vals[i] = t.Rate
			tags[i] = int32(i)
		}
		c.mat = sparse.New(c.numStates, rows, cols, vals, tags)
	}
	return c.mat
}

// incoming returns the transposed rate matrix (incoming adjacency),
// building it on demand.
func (c *CTMC) incoming() *sparse.Matrix {
	if c.tin == nil {
		c.tin = c.matrix().Transpose()
	}
	return c.tin
}

// Freeze eagerly builds both lazy CSR views (outgoing and incoming
// adjacency), so that subsequent read-only methods never write the cache
// and are safe for concurrent use (see the type's concurrency contract).
// Adding transitions after Freeze invalidates the views; call Freeze
// again before resuming concurrent reads. Idempotent and cheap when
// already frozen.
func (c *CTMC) Freeze() {
	c.matrix()
	c.incoming()
}

// ExitRate returns the total outgoing rate of a state (0 for absorbing).
func (c *CTMC) ExitRate(s int) float64 { return c.exitRate[s] }

// IsAbsorbing reports whether the state has no outgoing transitions.
func (c *CTMC) IsAbsorbing(s int) bool { return c.exitRate[s] == 0 }

// EachFrom calls f for every transition leaving s, in ascending
// destination order.
func (c *CTMC) EachFrom(s int, f func(Transition)) {
	for _, tag := range c.matrix().RowTags(s) {
		f(c.trans[tag])
	}
}

// EachTransition calls f for every transition.
func (c *CTMC) EachTransition(f func(Transition)) {
	for _, t := range c.trans {
		f(t)
	}
}

// MaxExitRate returns the largest exit rate (the uniformization constant
// base).
func (c *CTMC) MaxExitRate() float64 {
	max := 0.0
	for _, r := range c.exitRate {
		if r > max {
			max = r
		}
	}
	return max
}

// bsccs returns the bottom strongly connected components (those with no
// transition leaving the component), each sorted ascending.
func (c *CTMC) bsccs() [][]int {
	return c.matrix().BottomSCCs()
}
