// Package markov implements continuous-time Markov chains (CTMCs) and the
// numerical solvers the Multival performance-evaluation flow relies on:
// steady-state distributions (Gauss–Seidel with BSCC analysis), transient
// distributions (uniformization), transition throughputs, expected
// absorption times (used for latency predictions), and a discrete-event
// simulator for cross-validation. It plays the role of BCG_STEADY and
// BCG_TRANSIENT in CADP.
package markov

import (
	"fmt"
	"math"
	"sort"
)

// Transition is a rated, optionally labeled CTMC transition.
type Transition struct {
	Src, Dst int
	Rate     float64
	Label    string // informational; used for throughput queries
}

// CTMC is a finite continuous-time Markov chain with a distinguished
// initial state.
type CTMC struct {
	numStates int
	initial   int
	trans     []Transition
	out       [][]int32 // adjacency into trans
	exitRate  []float64
}

// NewCTMC creates a CTMC with n states, initial state 0.
func NewCTMC(n int) *CTMC {
	return &CTMC{
		numStates: n,
		out:       make([][]int32, n),
		exitRate:  make([]float64, n),
	}
}

// NumStates returns the number of states.
func (c *CTMC) NumStates() int { return c.numStates }

// NumTransitions returns the number of transitions.
func (c *CTMC) NumTransitions() int { return len(c.trans) }

// Initial returns the initial state.
func (c *CTMC) Initial() int { return c.initial }

// SetInitial sets the initial state.
func (c *CTMC) SetInitial(s int) {
	if s < 0 || s >= c.numStates {
		panic(fmt.Sprintf("markov: state %d out of range", s))
	}
	c.initial = s
}

// Add inserts a transition with the given rate (must be positive) and an
// optional label. Self-loops are ignored (they do not affect CTMC
// semantics) but still contribute to label throughput bookkeeping, so they
// are stored with rate counted out of the sojourn: to keep the generator
// well-formed we drop them and document the fact.
func (c *CTMC) Add(src, dst int, rate float64, label string) error {
	if src < 0 || src >= c.numStates || dst < 0 || dst >= c.numStates {
		return fmt.Errorf("markov: transition (%d,%d) out of range", src, dst)
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("markov: invalid rate %v", rate)
	}
	if src == dst {
		return nil
	}
	idx := int32(len(c.trans))
	c.trans = append(c.trans, Transition{src, dst, rate, label})
	c.out[src] = append(c.out[src], idx)
	c.exitRate[src] += rate
	return nil
}

// MustAdd is Add that panics on error, for hand-built models.
func (c *CTMC) MustAdd(src, dst int, rate float64, label string) {
	if err := c.Add(src, dst, rate, label); err != nil {
		panic(err)
	}
}

// ExitRate returns the total outgoing rate of a state (0 for absorbing).
func (c *CTMC) ExitRate(s int) float64 { return c.exitRate[s] }

// IsAbsorbing reports whether the state has no outgoing transitions.
func (c *CTMC) IsAbsorbing(s int) bool { return len(c.out[s]) == 0 }

// EachFrom calls f for every transition leaving s.
func (c *CTMC) EachFrom(s int, f func(Transition)) {
	for _, idx := range c.out[s] {
		f(c.trans[idx])
	}
}

// EachTransition calls f for every transition.
func (c *CTMC) EachTransition(f func(Transition)) {
	for _, t := range c.trans {
		f(t)
	}
}

// MaxExitRate returns the largest exit rate (the uniformization constant
// base).
func (c *CTMC) MaxExitRate() float64 {
	max := 0.0
	for _, r := range c.exitRate {
		if r > max {
			max = r
		}
	}
	return max
}

// bsccs returns the bottom strongly connected components (those with no
// transition leaving the component), each sorted ascending.
func (c *CTMC) bsccs() [][]int {
	// Tarjan (iterative) over the transition graph.
	const unvisited = -1
	n := c.numStates
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n) // state -> component id
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var (
		stack   []int
		counter int
		comps   [][]int
	)
	type frame struct {
		s, edge int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{root, 0}}
		index[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			advanced := false
			for f.edge < len(c.out[f.s]) {
				t := c.trans[c.out[f.s][f.edge]]
				f.edge++
				w := t.Dst
				if index[w] == unvisited {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.s] {
					low[f.s] = index[w]
				}
			}
			if advanced {
				continue
			}
			s := f.s
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[s] < low[p.s] {
					low[p.s] = low[s]
				}
			}
			if low[s] == index[s] {
				id := len(comps)
				var members []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = id
					members = append(members, w)
					if w == s {
						break
					}
				}
				sort.Ints(members)
				comps = append(comps, members)
			}
		}
	}
	// A component is bottom iff no member has a transition out of it.
	var bsccs [][]int
	for id, members := range comps {
		bottom := true
		for _, s := range members {
			c.EachFrom(s, func(t Transition) {
				if comp[t.Dst] != id {
					bottom = false
				}
			})
			if !bottom {
				break
			}
		}
		if bottom {
			bsccs = append(bsccs, members)
		}
	}
	return bsccs
}
