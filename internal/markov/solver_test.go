package markov

// Differential tests of the CSR sweep kernels: the parallel Jacobi path
// must agree with the sequential Gauss–Seidel default, both must agree
// with the discrete-event simulator, and the policy-facing extras (bias,
// residual reporting, absorb progress) must behave.

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"multival/internal/engine"
)

// jacobiOpts selects the parallel Jacobi kernels.
func jacobiOpts() SolveOptions { return SolveOptions{Workers: 4} }

// randMultiBSCC builds a chain with a transient prefix that branches into
// several BSCC rings, exercising absorption weighting.
func randMultiBSCC(rng *rand.Rand, bsccs int) *CTMC {
	const prefix = 6
	ring := 3
	n := prefix + bsccs*ring
	c := NewCTMC(n)
	// Transient chain 0..prefix-1 with random skips.
	for i := 0; i < prefix-1; i++ {
		c.MustAdd(i, i+1, 0.5+rng.Float64()*2, "")
	}
	for b := 0; b < bsccs; b++ {
		base := prefix + b*ring
		// Entry from a random transient state.
		c.MustAdd(rng.Intn(prefix), base, 0.3+rng.Float64()*2, "")
		for k := 0; k < ring; k++ {
			c.MustAdd(base+k, base+(k+1)%ring, 0.4+rng.Float64()*3, "")
		}
	}
	// Ensure the last transient state exits (it may only have the chain
	// edge into it): give it an edge into the first BSCC.
	if c.ExitRate(prefix-1) == 0 {
		c.MustAdd(prefix-1, prefix, 1, "")
	}
	return c
}

func TestJacobiMatchesGaussSeidelSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		c := NewCTMC(n)
		for i := 0; i < n; i++ {
			c.MustAdd(i, (i+1)%n, 0.2+4*rng.Float64(), "")
		}
		for e := 0; e < 2*n; e++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src != dst {
				c.MustAdd(src, dst, 0.2+4*rng.Float64(), "")
			}
		}
		gs, err := c.SteadyState(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		jac, err := c.SteadyState(jacobiOpts())
		if err != nil {
			t.Fatal(err)
		}
		for i := range gs {
			almost(t, jac[i], gs[i], 1e-8, "jacobi vs gauss-seidel pi")
		}
	}
}

func TestJacobiMatchesGaussSeidelMultiBSCC(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 10; trial++ {
		c := randMultiBSCC(rng, 2+rng.Intn(3))
		gs, err := c.SteadyState(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		jac, err := c.SteadyState(jacobiOpts())
		if err != nil {
			t.Fatal(err)
		}
		for i := range gs {
			almost(t, jac[i], gs[i], 1e-7, "multi-BSCC jacobi vs gauss-seidel")
		}
	}
}

func TestJacobiMatchesSimulator(t *testing.T) {
	c := mm1k(1.5, 2, 4)
	pi, err := c.SteadyState(jacobiOpts())
	if err != nil {
		t.Fatal(err)
	}
	occ := c.Simulate(rand.New(rand.NewSource(99)), 200000)
	for i := range pi {
		almost(t, occ[i], pi[i], 0.01, "jacobi vs simulated occupancy")
	}
}

func TestJacobiMatchesGaussSeidelAbsorptionTime(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(20)
		c := NewCTMC(n)
		for i := 0; i < n; i++ {
			c.MustAdd(i, (i+1)%n, 0.2+4*rng.Float64(), "")
		}
		target := rng.Intn(n)
		gs, err := c.ExpectedTimeToAbsorption([]int{target}, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		jac, err := c.ExpectedTimeToAbsorption([]int{target}, jacobiOpts())
		if err != nil {
			t.Fatal(err)
		}
		for i := range gs {
			almost(t, jac[i], gs[i], 1e-7*(1+gs[i]), "jacobi vs gauss-seidel fpt")
		}
	}
}

func TestJacobiMatchesGaussSeidelTransient(t *testing.T) {
	c := mm1k(2, 2, 8)
	for _, tm := range []float64{0.3, 2, 15} {
		gs, err := c.Transient(tm, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := c.Transient(tm, jacobiOpts())
		if err != nil {
			t.Fatal(err)
		}
		for i := range gs {
			almost(t, par[i], gs[i], 1e-10, "parallel vs sequential transient")
		}
	}
}

func TestAbsorptionReportsProgress(t *testing.T) {
	// Multi-BSCC chain must emit Progress{Stage: "absorb"} like the
	// other solver loops.
	c := NewCTMC(4)
	c.MustAdd(0, 1, 1, "")
	c.MustAdd(0, 2, 3, "")
	c.MustAdd(2, 3, 1, "")
	c.MustAdd(3, 2, 1, "")
	var mu sync.Mutex
	stages := map[string]int{}
	opts := SolveOptions{Progress: func(p engine.Progress) {
		mu.Lock()
		stages[p.Stage]++
		mu.Unlock()
	}}
	if _, err := c.SteadyState(opts); err != nil {
		t.Fatal(err)
	}
	if stages["absorb"] == 0 {
		t.Errorf("no absorb progress reported (stages: %v)", stages)
	}
	if stages["steady"] == 0 {
		t.Errorf("no steady progress reported (stages: %v)", stages)
	}
}

func TestAbsorptionSolvesOneFewerSystem(t *testing.T) {
	// With k BSCCs only k-1 systems are solved; the last weight is the
	// complement. The 3-BSCC fan: 0 -> {1}, {2}, {3} with rates 1, 2, 1.
	c := NewCTMC(4)
	c.MustAdd(0, 1, 1, "")
	c.MustAdd(0, 2, 2, "")
	c.MustAdd(0, 3, 1, "")
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, pi[1], 0.25, 1e-9, "weight 1")
	almost(t, pi[2], 0.50, 1e-9, "weight 2")
	almost(t, pi[3], 0.25, 1e-9, "weight 3 (complement)")
	sum := pi[1] + pi[2] + pi[3]
	almost(t, sum, 1, 1e-12, "weights sum")
}

func TestConvergenceErrorCarriesResidual(t *testing.T) {
	// Starved iteration budgets must report the actual last residual,
	// not NaN.
	c := mm1k(1.5, 2, 50)
	_, err := c.SteadyState(SolveOptions{MaxIterations: 2})
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("expected ConvergenceError, got %v", err)
	}
	if math.IsNaN(ce.Residual) || ce.Residual <= 0 {
		t.Errorf("steady residual = %v, want a positive finite value", ce.Residual)
	}

	_, err = c.ExpectedTimeToAbsorption([]int{0}, SolveOptions{MaxIterations: 2})
	if !errors.As(err, &ce) {
		t.Fatalf("expected ConvergenceError, got %v", err)
	}
	if math.IsNaN(ce.Residual) || ce.Residual <= 0 {
		t.Errorf("fpt residual = %v, want a positive finite value", ce.Residual)
	}
}

func TestBiasSolvesPoissonEquation(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(15)
		c := NewCTMC(n)
		for i := 0; i < n; i++ {
			c.MustAdd(i, (i+1)%n, 0.3+3*rng.Float64(), "")
		}
		for e := 0; e < n; e++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src != dst {
				c.MustAdd(src, dst, 0.3+3*rng.Float64(), "")
			}
		}
		reward := make([]float64, n)
		for i := range reward {
			reward[i] = rng.Float64() * 2
		}
		pi, err := c.SteadyState(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gain := ExpectedReward(pi, reward)
		for _, opts := range []SolveOptions{{}, jacobiOpts()} {
			h, err := c.Bias(reward, gain, opts)
			if err != nil {
				t.Fatal(err)
			}
			if h[c.Initial()] != 0 {
				t.Errorf("h[initial] = %g, want 0", h[c.Initial()])
			}
			// Verify the fixed point state by state.
			for s := 0; s < n; s++ {
				sum := reward[s] - gain
				c.EachFrom(s, func(tr Transition) {
					sum += tr.Rate * h[tr.Dst]
				})
				almost(t, h[s], sum/c.ExitRate(s), 1e-6*(1+math.Abs(h[s])), "poisson fixed point")
			}
		}
	}
}

func TestFrozenChainSolvesConcurrently(t *testing.T) {
	// After Freeze, one chain may be solved from many goroutines (the
	// race detector enforces the contract under `make race`).
	c := mm1k(1, 2, 20)
	c.Freeze()
	want, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opts := SolveOptions{}
			if g%2 == 1 {
				opts = jacobiOpts()
			}
			pi, err := c.SteadyState(opts)
			if err != nil {
				errs[g] = err
				return
			}
			for i := range pi {
				if math.Abs(pi[i]-want[i]) > 1e-8 {
					errs[g] = errors.New("diverging concurrent solve")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
