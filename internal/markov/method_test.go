package markov

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// denseStationary solves the stationary distribution by Gaussian
// elimination on the full balance system (last equation replaced by the
// normalization), the enumerative reference for the iterative methods.
// Only valid for irreducible chains.
func denseStationary(t *testing.T, c *CTMC) []float64 {
	t.Helper()
	n := c.NumStates()
	a := make([][]float64, n)
	for j := range a {
		a[j] = make([]float64, n+1)
	}
	// Equation j: sum_i pi_i rate(i->j) - pi_j exit_j = 0.
	c.EachTransition(func(tr Transition) {
		a[tr.Dst][tr.Src] += tr.Rate
	})
	for j := 0; j < n; j++ {
		a[j][j] -= c.ExitRate(j)
	}
	for i := 0; i < n; i++ {
		a[n-1][i] = 1
	}
	a[n-1][n] = 1
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if a[col][col] == 0 {
			t.Fatal("singular dense stationary system")
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for k := col; k <= n; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	pi := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := a[r][n]
		for k := r + 1; k < n; k++ {
			sum -= a[r][k] * pi[k]
		}
		pi[r] = sum / a[r][r]
	}
	return pi
}

func maxDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// TestQuickMethodsAgreeOnStationary: BiCGSTAB == GS == enumerative
// closure on random irreducible CTMCs.
func TestQuickMethodsAgreeOnStationary(t *testing.T) {
	prop := func(r randChain) bool {
		ref := denseStationary(t, r.C)
		for _, m := range []Method{MethodGS, MethodAuto, MethodBiCGSTAB, MethodJacobi} {
			pi, err := r.C.SteadyState(SolveOptions{Method: m})
			if err != nil {
				t.Logf("method %s: %v", m, err)
				return false
			}
			if d := maxDiff(pi, ref); d > 1e-8 {
				t.Logf("method %s diverges from dense reference by %g", m, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// TestMethodsAgreeOnStiffChains spreads rates across six orders of
// magnitude; the Krylov path must agree with the sweep reference (or
// fall back) without losing the distribution.
func TestMethodsAgreeOnStiffChains(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(40)
		c := NewCTMC(n)
		for i := 0; i < n; i++ {
			c.MustAdd(i, (i+1)%n, math.Pow(10, 3-6*rng.Float64()), "")
		}
		for e := 0; e < n; e++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src != dst {
				c.MustAdd(src, dst, math.Pow(10, 3-6*rng.Float64()), "")
			}
		}
		gs, err := c.SteadyState(SolveOptions{Method: MethodGS})
		if err != nil {
			t.Fatalf("trial %d gs: %v", trial, err)
		}
		kr, err := c.SteadyState(SolveOptions{Method: MethodBiCGSTAB})
		if err != nil {
			t.Fatalf("trial %d bicgstab: %v", trial, err)
		}
		for i := range gs {
			if d := math.Abs(gs[i] - kr[i]); d > 1e-7*(1+gs[i]) {
				t.Fatalf("trial %d state %d: gs %g vs bicgstab %g", trial, i, gs[i], kr[i])
			}
		}
	}
}

// TestBiCGSTABOnPeriodicRing: a pure cycle oriented against the sweep
// order is the classic stagnation case for Gauss–Seidel and a periodic
// (hence hard) operator for Krylov methods; the solve must still return
// the uniform distribution, by kernel or by fallback.
func TestBiCGSTABOnPeriodicRing(t *testing.T) {
	for _, n := range []int{7, 301} {
		c := NewCTMC(n)
		for i := 0; i < n; i++ {
			c.MustAdd((i+1)%n, i, 1, "")
		}
		pi, err := c.SteadyState(SolveOptions{Method: MethodBiCGSTAB})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, p := range pi {
			almost(t, p, 1/float64(n), 1e-9, "periodic ring pi")
			_ = i
		}
	}
}

// TestMethodsAgreeOnMultiBSCCAbsorption compares the block-structured
// absorption path (auto / forced Krylov, sequential and parallel)
// against the legacy global sweeps on multi-BSCC fixtures.
func TestMethodsAgreeOnMultiBSCCAbsorption(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 15; trial++ {
		c := randMultiBSCC(rng, 2+rng.Intn(4))
		ref, err := c.SteadyState(SolveOptions{Method: MethodGS})
		if err != nil {
			t.Fatalf("trial %d gs: %v", trial, err)
		}
		for _, opts := range []SolveOptions{
			{Method: MethodAuto},
			{Method: MethodBiCGSTAB},
			{Method: MethodBiCGSTAB, Workers: 4},
			{Method: MethodJacobi},
		} {
			pi, err := c.SteadyState(opts)
			if err != nil {
				t.Fatalf("trial %d method %s workers %d: %v", trial, opts.Method, opts.Workers, err)
			}
			if d := maxDiff(pi, ref); d > 1e-8 {
				t.Fatalf("trial %d method %s workers %d: diff %g from gs reference", trial, opts.Method, opts.Workers, d)
			}
		}
	}
}

// TestHittingBlocksMatchLegacy compares the SCC-block first-passage
// solver against the legacy global sweep on a birth-death chain and on
// random irreducible chains.
func TestHittingBlocksMatchLegacy(t *testing.T) {
	chains := []*CTMC{mm1k(1.5, 2, 60)}
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(30)
		c := NewCTMC(n)
		for i := 0; i < n; i++ {
			c.MustAdd(i, (i+1)%n, 0.2+4*rng.Float64(), "")
		}
		for e := 0; e < n; e++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src != dst {
				c.MustAdd(src, dst, 0.2+4*rng.Float64(), "")
			}
		}
		chains = append(chains, c)
	}
	for ci, c := range chains {
		ref, err := c.ExpectedTimeToAbsorption([]int{0}, SolveOptions{Method: MethodGS})
		if err != nil {
			t.Fatalf("chain %d gs: %v", ci, err)
		}
		for _, m := range []Method{MethodAuto, MethodBiCGSTAB} {
			h, err := c.ExpectedTimeToAbsorption([]int{0}, SolveOptions{Method: m})
			if err != nil {
				t.Fatalf("chain %d method %s: %v", ci, m, err)
			}
			for s := range h {
				if d := math.Abs(h[s] - ref[s]); d > 1e-7*(1+ref[s]) {
					t.Fatalf("chain %d method %s state %d: %g vs %g", ci, m, s, h[s], ref[s])
				}
			}
		}
	}
}

// TestBiasKrylovMatchesSweeps: the deflated Poisson solve must agree
// with the projected damped-Jacobi iteration up to tolerance.
func TestBiasKrylovMatchesSweeps(t *testing.T) {
	c := mm1k(1.5, 2, 80)
	rng := rand.New(rand.NewSource(94))
	n := c.NumStates()
	reward := make([]float64, n)
	for i := range reward {
		reward[i] = rng.Float64() * 3
	}
	pi, err := c.SteadyState(SolveOptions{Method: MethodGS})
	if err != nil {
		t.Fatal(err)
	}
	gain := ExpectedReward(pi, reward)
	ref, err := c.Bias(reward, gain, SolveOptions{Method: MethodGS})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Bias(reward, gain, SolveOptions{Method: MethodBiCGSTAB})
	if err != nil {
		t.Fatal(err)
	}
	scale := 1.0
	for _, v := range ref {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for s := range h {
		if d := math.Abs(h[s] - ref[s]); d > 1e-6*scale {
			t.Fatalf("state %d: bias %g vs sweep reference %g", s, h[s], ref[s])
		}
	}
}

// TestKrylovFallbackForcedAndCounted caps the Krylov budget at one
// iteration so every BiCGSTAB attempt stalls: the solve must still
// produce the right distribution through the damped-Jacobi fallback,
// and the process-wide fallback counter must tick.
func TestKrylovFallbackForcedAndCounted(t *testing.T) {
	krylovIterCap = 1
	defer func() { krylovIterCap = 0 }()
	before := Fallbacks().BiCGSTABToJacobi
	c := mm1k(1.5, 2, 200)
	pi, err := c.SteadyState(SolveOptions{Method: MethodBiCGSTAB})
	if err != nil {
		t.Fatal(err)
	}
	want := mm1kAnalytic(1.5, 2, 200)
	for i := range pi {
		almost(t, pi[i], want[i], 1e-8, "fallback pi")
	}
	if after := Fallbacks().BiCGSTABToJacobi; after <= before {
		t.Fatalf("fallback counter did not advance: %d -> %d", before, after)
	}
}

// TestConvergenceErrorRecordsMethodAndFallback: the error must name the
// selected method and any fallback taken before the budget ran out.
func TestConvergenceErrorRecordsMethodAndFallback(t *testing.T) {
	c := mm1k(1.5, 2, 200)
	_, err := c.SteadyState(SolveOptions{Method: MethodGS, MaxIterations: 2})
	var ce *ConvergenceError
	if !errors.As(err, &ce) || ce.Method != "gs" || ce.Fallback != "" {
		t.Fatalf("gs error = %v (%+v)", err, ce)
	}

	krylovIterCap = 1
	defer func() { krylovIterCap = 0 }()
	_, err = c.SteadyState(SolveOptions{Method: MethodBiCGSTAB, MaxIterations: 3})
	if !errors.As(err, &ce) || ce.Method != "bicgstab" || ce.Fallback != "jacobi" {
		t.Fatalf("bicgstab error = %v (%+v)", err, ce)
	}
}

// TestParseMethodValidation: unknown names are rejected up front, both
// by ParseMethod and by the solver entry points.
func TestParseMethodValidation(t *testing.T) {
	if m, err := ParseMethod(""); err != nil || m != MethodAuto {
		t.Fatalf("ParseMethod(\"\") = %v, %v", m, err)
	}
	if _, err := ParseMethod("sor"); err == nil {
		t.Fatal("ParseMethod accepted an unknown method")
	}
	c := mm1k(1.5, 2, 10)
	if _, err := c.SteadyState(SolveOptions{Method: "sor"}); err == nil {
		t.Fatal("SteadyState accepted an unknown method")
	}
	if _, err := c.ExpectedTimeToAbsorption([]int{0}, SolveOptions{Method: "sor"}); err == nil {
		t.Fatal("ExpectedTimeToAbsorption accepted an unknown method")
	}
}

// TestParallelBiCGSTABMatchesSequential drives the Krylov path with
// Workers > 1 (the race job covers this test under -race) and checks
// the result is bit-identical to the sequential Krylov solve — the
// matvec is a per-row gather and all reductions are sequential.
func TestParallelBiCGSTABMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	n := 3000
	c := NewCTMC(n)
	for i := 0; i < n; i++ {
		c.MustAdd(i, (i+1)%n, 0.2+4*rng.Float64(), "")
	}
	for e := 0; e < 2*n; e++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src != dst {
			c.MustAdd(src, dst, 0.2+4*rng.Float64(), "")
		}
	}
	seq, err := c.SteadyState(SolveOptions{Method: MethodBiCGSTAB})
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.SteadyState(SolveOptions{Method: MethodBiCGSTAB, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("worker count changed the Krylov result at state %d: %g vs %g", i, seq[i], par[i])
		}
	}
}

// TestAutoMatchesGSBitForBitOnSmallChains: below the Krylov threshold a
// single-BSCC auto solve runs the identical legacy code path, so the
// results must agree to the last bit — forcing Method gs preserves
// today's defaults exactly.
func TestAutoMatchesGSBitForBitOnSmallChains(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(60)
		c := NewCTMC(n)
		for i := 0; i < n; i++ {
			c.MustAdd(i, (i+1)%n, 0.2+4*rng.Float64(), "")
		}
		for e := 0; e < n; e++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src != dst {
				c.MustAdd(src, dst, 0.2+4*rng.Float64(), "")
			}
		}
		auto, err := c.SteadyState(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gs, err := c.SteadyState(SolveOptions{Method: MethodGS})
		if err != nil {
			t.Fatal(err)
		}
		for i := range auto {
			if auto[i] != gs[i] {
				t.Fatalf("trial %d: auto and gs differ at state %d: %g vs %g", trial, i, auto[i], gs[i])
			}
		}
	}
}
