package mcl

import (
	"strings"
	"testing"

	"multival/internal/lts"
)

// diamond builds:
//
//	0 -a-> 1 -b-> 3
//	0 -c-> 2 -d-> 3
//	3 (deadlock)
func diamondLTS() *lts.LTS {
	l := lts.New("diamond")
	l.AddStates(4)
	l.AddTransition(0, "a", 1)
	l.AddTransition(0, "c", 2)
	l.AddTransition(1, "b", 3)
	l.AddTransition(2, "d", 3)
	l.SetInitial(0)
	return l
}

// ring builds a 3-cycle 0 -a-> 1 -b-> 2 -c-> 0 (deadlock-free).
func ringLTS() *lts.LTS {
	l := lts.New("ring")
	l.AddStates(3)
	l.AddTransition(0, "a", 1)
	l.AddTransition(1, "b", 2)
	l.AddTransition(2, "c", 0)
	l.SetInitial(0)
	return l
}

func TestBasicModalities(t *testing.T) {
	l := diamondLTS()
	cases := []struct {
		f    Formula
		want bool
	}{
		{True(), true},
		{False(), false},
		{Dia(Action("a"), True()), true},
		{Dia(Action("b"), True()), false},                  // b not enabled at 0
		{Box(Action("z"), False()), true},                  // vacuous
		{Box(AnyAction(), Dia(AnyAction(), True())), true}, // all succs of 0 can move
		{Dia(Action("a"), Dia(Action("b"), True())), true},
		{Dia(Action("a"), Dia(Action("d"), True())), false},
		{Not(Dia(Action("b"), True())), true},
		{And(Dia(Action("a"), True()), Dia(Action("c"), True())), true},
		{Or(Dia(Action("z"), True()), Dia(Action("a"), True())), true},
		{Implies(Dia(Action("a"), True()), Dia(Action("c"), True())), true},
	}
	for i, c := range cases {
		got, err := Check(l, c.f)
		if err != nil {
			t.Fatalf("case %d (%s): %v", i, c.f, err)
		}
		if got != c.want {
			t.Errorf("case %d: Check(%s) = %v, want %v", i, c.f, got, c.want)
		}
	}
}

func TestFixpoints(t *testing.T) {
	l := diamondLTS()
	// EF <b>true: a b-step is reachable.
	if !MustCheck(l, ReachableAction(Action("b"))) {
		t.Error("b should be reachable")
	}
	if MustCheck(l, ReachableAction(Action("nope"))) {
		t.Error("nope should not be reachable")
	}
	// Deadlock reachable (state 3).
	if !MustCheck(l, Reachable(Not(Dia(AnyAction(), True())))) {
		t.Error("deadlock should be reachable in diamond")
	}
	if MustCheck(l, DeadlockFree()) {
		t.Error("diamond has a deadlock")
	}
	if !MustCheck(ringLTS(), DeadlockFree()) {
		t.Error("ring is deadlock-free")
	}
	// AF deadlock: inevitable in diamond (all paths end in state 3).
	if !MustCheck(l, Inevitable(Not(Dia(AnyAction(), True())))) {
		t.Error("diamond inevitably deadlocks")
	}
	if MustCheck(ringLTS(), Inevitable(Not(Dia(AnyAction(), True())))) {
		t.Error("ring never deadlocks")
	}
}

func TestInvariantAndNeverEnabled(t *testing.T) {
	l := ringLTS()
	if !MustCheck(l, Invariant(Dia(AnyAction(), True()))) {
		t.Error("ring invariantly can move")
	}
	if !MustCheck(l, NeverEnabled(Action("zzz"))) {
		t.Error("zzz is never enabled")
	}
	if MustCheck(l, NeverEnabled(Action("b"))) {
		t.Error("b is enabled at state 1")
	}
}

func TestResponse(t *testing.T) {
	// In the ring every a is followed by b eventually.
	if !MustCheck(ringLTS(), Response(Action("a"), Action("b"))) {
		t.Error("ring: a should be followed by b")
	}
	// In the diamond, after a the only continuation is b: response holds.
	if !MustCheck(diamondLTS(), Response(Action("a"), Action("b"))) {
		t.Error("diamond: a is always followed by b")
	}
	// After a, d never happens.
	if MustCheck(diamondLTS(), Response(Action("a"), Action("d"))) {
		t.Error("diamond: a is never followed by d")
	}
}

func TestWeakModalitiesAndLivelock(t *testing.T) {
	// 0 -tau-> 1 -a-> 2, plus tau cycle 3<->4 reachable by b from 0.
	l := lts.New("weak")
	l.AddStates(5)
	l.AddTransition(0, lts.Tau, 1)
	l.AddTransition(1, "a", 2)
	l.AddTransition(0, "b", 3)
	l.AddTransition(3, lts.Tau, 4)
	l.AddTransition(4, lts.Tau, 3)
	l.SetInitial(0)

	if !MustCheck(l, WeakDia(Action("a"), True())) {
		t.Error("weak diamond should see a through tau")
	}
	if MustCheck(l, Dia(Action("a"), True())) {
		t.Error("strong diamond must not see a through tau")
	}
	if !MustCheck(l, Livelock()) {
		t.Error("tau cycle is a livelock")
	}
	if MustCheck(ringLTS(), Livelock()) {
		t.Error("ring has no tau at all")
	}
}

func TestActionFormulas(t *testing.T) {
	cases := []struct {
		af    ActionFormula
		label string
		want  bool
	}{
		{AnyAction(), "x", true},
		{AnyAction(), lts.Tau, true},
		{TauAction(), lts.Tau, true},
		{TauAction(), "x", false},
		{VisibleAction(), "x", true},
		{VisibleAction(), lts.Tau, false},
		{Action("push"), "push", true},
		{Action("push"), "pop", false},
		{MustActionRegex("push.*"), "push !5", true},
		{MustActionRegex("push.*"), "pop", false},
		{NotAction(Action("a")), "b", true},
		{AndAction(MustActionRegex("p.*"), NotAction(Action("pop"))), "push", true},
		{AndAction(MustActionRegex("p.*"), NotAction(Action("pop"))), "pop", false},
		{OrAction(Action("a"), Action("b")), "b", true},
	}
	for i, c := range cases {
		if got := c.af.Matches(c.label); got != c.want {
			t.Errorf("case %d: %s.Matches(%q) = %v, want %v", i, c.af, c.label, got, c.want)
		}
	}
	if _, err := ActionRegex("("); err == nil {
		t.Error("bad regex accepted")
	}
}

func TestWellFormedness(t *testing.T) {
	// Free variable.
	if _, err := Sat(ringLTS(), Var("X")); err == nil {
		t.Error("free variable accepted")
	}
	// Negative occurrence.
	bad := Mu("X", Not(Var("X")))
	if _, err := Sat(ringLTS(), bad); err == nil {
		t.Error("negative fixpoint variable accepted")
	}
	// Double negation is fine.
	good := Mu("X", Not(Not(Var("X"))))
	if _, err := Sat(ringLTS(), good); err != nil {
		t.Errorf("positive (doubly negated) variable rejected: %v", err)
	}
	// Variable under box inside negation: still negative.
	bad2 := Nu("X", Not(Box(AnyAction(), Var("X"))))
	if _, err := Sat(ringLTS(), bad2); err == nil {
		t.Error("negative variable under box accepted")
	}
}

func TestNestedFixpointsShadowing(t *testing.T) {
	// nu X. (<a>true or mu X. <any>X) — inner X shadows outer.
	f := Nu("X", Or(Dia(Action("a"), True()), Mu("X", Dia(AnyAction(), Var("X")))))
	if _, err := Sat(ringLTS(), f); err != nil {
		t.Fatalf("shadowed fixpoint rejected: %v", err)
	}
}

func TestSatCount(t *testing.T) {
	l := diamondLTS()
	set, err := Sat(l, Dia(AnyAction(), True()))
	if err != nil {
		t.Fatal(err)
	}
	if set.Count() != 3 { // states 0,1,2 can move; 3 is deadlocked
		t.Errorf("Sat count = %d, want 3", set.Count())
	}
}

func TestVerifyWitness(t *testing.T) {
	l := diamondLTS()
	res, err := Verify(l, ReachableAction(Action("b")))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatal("property should hold")
	}
	if len(res.Witness) != 2 || res.Witness[0] != "a" || res.Witness[1] != "b" {
		t.Errorf("witness = %v, want [a b]", res.Witness)
	}
}

func TestVerifyWitnessDeadlock(t *testing.T) {
	l := diamondLTS()
	res, err := Verify(l, Reachable(Not(Dia(AnyAction(), True()))))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatal("deadlock reachable")
	}
	if len(res.Witness) != 2 {
		t.Errorf("witness = %v, want length 2 (shortest path to state 3)", res.Witness)
	}
}

func TestParseBasics(t *testing.T) {
	l := diamondLTS()
	cases := []struct {
		src  string
		want bool
	}{
		{"true", true},
		{"false", false},
		{"<a> true", true},
		{"[a] <b> true", true},
		{"<a> true and <c> true", true},
		{"<a> true or <zz> true", true},
		{"not <b> true", true},
		{"<a> true -> <c> true", true},
		{`<"a"> true`, true},
		{"mu X . (<b> true or <true> X)", true},
		{"nu X . (<true> true and [true] X)", false}, // deadlock falsifies
		{"< /a|c/ > true", true},
		{"<~tau> true", true},
		{"[a | c] <b | d> true", true},
		{"<a & ~b> true", true},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		got, err := Check(l, f)
		if err != nil {
			t.Errorf("Check(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("Check(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "(", "<a true", "[a> true", "mu . true", "mu X true",
		"true true", "<> true", "not", "mu X . </(/ > X", "«",
		`<"unterminated> true`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseRoundtrip(t *testing.T) {
	// String() output of parsed formulas re-parses to a formula with the
	// same truth value on a test LTS.
	l := diamondLTS()
	srcs := []string{
		"mu X . (<b> true or <true> X)",
		"nu I . (<true> true and [true] I)",
		"[a | c] (<b> true or <d> true)",
		"not (<a> true and not <c> true)",
		"<a> true -> (<c> true or false)",
	}
	for _, src := range srcs {
		f1 := MustParse(src)
		f2, err := Parse(f1.String())
		if err != nil {
			t.Errorf("reparse of %q (%q) failed: %v", src, f1.String(), err)
			continue
		}
		v1, v2 := MustCheck(l, f1), MustCheck(l, f2)
		if v1 != v2 {
			t.Errorf("roundtrip changed truth of %q: %v vs %v", src, v1, v2)
		}
	}
}

func TestEmptyLTS(t *testing.T) {
	l := lts.New("empty")
	if _, err := Check(l, True()); err == nil {
		t.Error("Check on empty LTS should error")
	}
}

func TestFormulaString(t *testing.T) {
	f := Mu("X", Or(Dia(Action("a"), True()), Box(TauAction(), Var("X"))))
	s := f.String()
	for _, want := range []string{"mu X", "<a>", "[tau]", "or"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestNegatedClosedFixpoint(t *testing.T) {
	// not (nu X. ...) is well-formed: polarity is relative to the binder.
	f := Not(DeadlockFree())
	got, err := Check(diamondLTS(), f)
	if err != nil {
		t.Fatalf("negated closed fixpoint rejected: %v", err)
	}
	if !got {
		t.Error("diamond has a deadlock, so not(DeadlockFree) must hold")
	}
	// Mixed: a negated fixpoint conjoined with a positive one.
	g := And(Not(DeadlockFree()), Reachable(Dia(Action("a"), True())))
	if _, err := Sat(diamondLTS(), g); err != nil {
		t.Fatalf("conjunction with negated fixpoint rejected: %v", err)
	}
}
