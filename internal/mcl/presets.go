package mcl

import (
	"multival/internal/lts"
)

// Fresh variable names used by the derived-operator constructors. They are
// deliberately unusual to avoid capture of user-chosen variables.
const (
	varReach  = "_R"
	varInv    = "_I"
	varInev   = "_F"
	varTauRch = "_T"
	varLoop   = "_L"
)

// Reachable is EF f: some path reaches a state satisfying f.
//
//	mu _R . f or <true> _R
func Reachable(f Formula) Formula {
	return Mu(varReach, Or(f, Dia(AnyAction(), Var(varReach))))
}

// ReachableAction holds when a transition matching act is reachable.
func ReachableAction(act ActionFormula) Formula {
	return Reachable(Dia(act, True()))
}

// Invariant is AG f: every reachable state satisfies f.
//
//	nu _I . f and [true] _I
func Invariant(f Formula) Formula {
	return Nu(varInv, And(f, Box(AnyAction(), Var(varInv))))
}

// Inevitable is AF f: every maximal path reaches a state satisfying f.
// Deadlocked states not satisfying f falsify the property.
//
//	mu _F . f or (<true> true and [true] _F)
func Inevitable(f Formula) Formula {
	return Mu(varInev, Or(f, And(Dia(AnyAction(), True()), Box(AnyAction(), Var(varInev)))))
}

// DeadlockFree is AG <true> true: no reachable state is a deadlock.
func DeadlockFree() Formula {
	return Invariant(Dia(AnyAction(), True()))
}

// NeverEnabled is AG not <act> true: no reachable state offers act.
func NeverEnabled(act ActionFormula) Formula {
	return Invariant(Not(Dia(act, True())))
}

// Response is AG [trigger] AF <response> true: every trigger is inevitably
// followed by a response.
func Response(trigger, response ActionFormula) Formula {
	return Invariant(Box(trigger, Inevitable(Dia(response, True()))))
}

// TauReach is f reachable through internal steps only:
//
//	mu _T . f or <tau> _T
func TauReach(f Formula) Formula {
	return Mu(varTauRch, Or(f, Dia(TauAction(), Var(varTauRch))))
}

// WeakDia is the weak diamond ⟪act⟫ f = ⟨tau*.act.tau*⟩ f.
func WeakDia(act ActionFormula, f Formula) Formula {
	return Mu(varReach, Or(Dia(act, TauReach(f)), Dia(TauAction(), Var(varReach))))
}

// Livelock holds when a cycle of internal actions is reachable:
//
//	EF nu _L . <tau> _L
func Livelock() Formula {
	return Reachable(Nu(varLoop, Dia(TauAction(), Var(varLoop))))
}

// AlwaysAfter is AG [act] f.
func AlwaysAfter(act ActionFormula, f Formula) Formula {
	return Invariant(Box(act, f))
}

// reachabilityWitness recognizes formulas built by Reachable /
// ReachableAction and, when possible, produces a shortest label trace from
// the initial state to a state satisfying the target subformula (for
// ReachableAction, the trace includes the matching action itself).
func reachabilityWitness(l *lts.LTS, f Formula) ([]string, bool) {
	mu, ok := f.(fMu)
	if !ok {
		return nil, false
	}
	or, ok := mu.body.(fOr)
	if !ok {
		return nil, false
	}
	dia, ok := or.b.(fDia)
	if !ok {
		return nil, false
	}
	v, ok := dia.f.(fVar)
	if !ok || v.name != mu.name {
		return nil, false
	}
	if _, isAny := dia.act.(afAny); !isAny {
		return nil, false
	}
	target := or.a
	if containsVar(target, mu.name) {
		return nil, false
	}
	targetSet, err := Sat(l, target)
	if err != nil {
		return nil, false
	}

	// If the target itself is <act> true, extend the trace with the action.
	var finalAct ActionFormula
	if d, ok := target.(fDia); ok {
		if _, isTrue := d.f.(fTrue); isTrue {
			finalAct = d.act
		}
	}

	// BFS for a shortest path from initial into targetSet.
	n := l.NumStates()
	if n == 0 {
		return nil, false
	}
	prevState := make([]lts.State, n)
	prevLabel := make([]int, n)
	seen := make([]bool, n)
	seen[l.Initial()] = true
	prevState[l.Initial()] = -1
	queue := []lts.State{l.Initial()}
	var goal lts.State = -1
	for qi := 0; qi < len(queue) && goal < 0; qi++ {
		s := queue[qi]
		if targetSet[s] {
			goal = s
			break
		}
		l.EachOutgoing(s, func(t lts.Transition) {
			if !seen[t.Dst] {
				seen[t.Dst] = true
				prevState[t.Dst] = s
				prevLabel[t.Dst] = t.Label
				queue = append(queue, t.Dst)
			}
		})
	}
	if goal < 0 {
		return nil, false
	}
	var trace []string
	for s := goal; prevState[s] != -1; s = prevState[s] {
		trace = append(trace, l.LabelName(prevLabel[s]))
	}
	// Reverse.
	for i, j := 0, len(trace)-1; i < j; i, j = i+1, j-1 {
		trace[i], trace[j] = trace[j], trace[i]
	}
	if finalAct != nil {
		found := false
		l.EachOutgoing(goal, func(t lts.Transition) {
			if !found && finalAct.Matches(l.LabelName(t.Label)) {
				trace = append(trace, l.LabelName(t.Label))
				found = true
			}
		})
	}
	return trace, true
}

func containsVar(f Formula, name string) bool {
	switch g := f.(type) {
	case fVar:
		return g.name == name
	case fNot:
		return containsVar(g.f, name)
	case fAnd:
		return containsVar(g.a, name) || containsVar(g.b, name)
	case fOr:
		return containsVar(g.a, name) || containsVar(g.b, name)
	case fDia:
		return containsVar(g.f, name)
	case fBox:
		return containsVar(g.f, name)
	case fMu:
		return g.name != name && containsVar(g.body, name)
	case fNu:
		return g.name != name && containsVar(g.body, name)
	default:
		return false
	}
}
