package mcl

import (
	"fmt"
	"strings"
)

// ParseQuery resolves a property query string to a formula. A query is
// either a named preset — the properties the Multival flow checks on
// every case study — or a raw modal mu-calculus formula handed to Parse.
// Presets:
//
//	deadlock              deadlock freedom (AG <true> true)
//	livelock              a cycle of internal actions is reachable
//	reachable:LABEL       a transition with this exact label is reachable
//	never:LABEL           no reachable state offers this exact label
//	inevitable:LABEL      every maximal path eventually offers this label
//	response:TRIG->RESP   every TRIG is inevitably followed by a RESP
//
// The preset spellings are the server-side and sweep-level property
// vocabulary: a query string is part of a cached artifact's identity, so
// it must stay stable across releases.
func ParseQuery(q string) (Formula, error) {
	query := strings.TrimSpace(q)
	if query == "" {
		return nil, fmt.Errorf("mcl: empty property query")
	}
	name, arg, hasArg := strings.Cut(query, ":")
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "deadlock", "deadlockfree", "deadlock-free":
		if hasArg {
			return nil, fmt.Errorf("mcl: preset %q takes no argument", name)
		}
		return DeadlockFree(), nil
	case "livelock":
		if hasArg {
			return nil, fmt.Errorf("mcl: preset %q takes no argument", name)
		}
		return Livelock(), nil
	case "reachable":
		if !hasArg || strings.TrimSpace(arg) == "" {
			return nil, fmt.Errorf("mcl: preset reachable needs a label (reachable:LABEL)")
		}
		return ReachableAction(Action(strings.TrimSpace(arg))), nil
	case "never":
		if !hasArg || strings.TrimSpace(arg) == "" {
			return nil, fmt.Errorf("mcl: preset never needs a label (never:LABEL)")
		}
		return NeverEnabled(Action(strings.TrimSpace(arg))), nil
	case "inevitable":
		if !hasArg || strings.TrimSpace(arg) == "" {
			return nil, fmt.Errorf("mcl: preset inevitable needs a label (inevitable:LABEL)")
		}
		return Inevitable(Dia(Action(strings.TrimSpace(arg)), True())), nil
	case "response":
		trig, resp, ok := strings.Cut(arg, "->")
		if !hasArg || !ok || strings.TrimSpace(trig) == "" || strings.TrimSpace(resp) == "" {
			return nil, fmt.Errorf("mcl: preset response needs two labels (response:TRIGGER->RESPONSE)")
		}
		return Response(Action(strings.TrimSpace(trig)), Action(strings.TrimSpace(resp))), nil
	}
	// Not a preset: the query is a raw mu-calculus formula.
	f, err := Parse(query)
	if err != nil {
		return nil, fmt.Errorf("mcl: query %q is neither a preset nor a formula: %w", q, err)
	}
	return f, nil
}
