package mcl

import (
	"fmt"

	"multival/internal/lts"
)

// StateSet is a characteristic vector over the states of an LTS.
type StateSet []bool

// Count returns the number of states in the set.
func (s StateSet) Count() int {
	n := 0
	for _, b := range s {
		if b {
			n++
		}
	}
	return n
}

func (s StateSet) equal(t StateSet) bool {
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Sat computes the set of states of l satisfying f. It returns an error if
// f is not well-formed: free variables, or a fixpoint variable under an odd
// number of negations (which would break monotonicity).
func Sat(l *lts.LTS, f Formula) (StateSet, error) {
	if err := checkWellFormed(f, map[string]bool{}, true); err != nil {
		return nil, err
	}
	env := map[string]StateSet{}
	return eval(l, f, env), nil
}

// Check reports whether the initial state of l satisfies f.
func Check(l *lts.LTS, f Formula) (bool, error) {
	set, err := Sat(l, f)
	if err != nil {
		return false, err
	}
	if l.NumStates() == 0 {
		return false, fmt.Errorf("mcl: empty LTS")
	}
	return set[l.Initial()], nil
}

// MustCheck is Check that panics on error; for statically known formulas.
func MustCheck(l *lts.LTS, f Formula) bool {
	ok, err := Check(l, f)
	if err != nil {
		panic(err)
	}
	return ok
}

// checkWellFormed verifies that every variable is bound and occurs
// positively *relative to its binder*: the negation parity at each
// occurrence must equal the parity at the binding fixpoint (this is the
// monotonicity condition; a whole closed fixpoint under `not` is fine).
// The bound map records the parity at each variable's binding point.
func checkWellFormed(f Formula, bound map[string]bool, positive bool) error {
	switch g := f.(type) {
	case fTrue, fFalse:
		return nil
	case fNot:
		return checkWellFormed(g.f, bound, !positive)
	case fAnd:
		if err := checkWellFormed(g.a, bound, positive); err != nil {
			return err
		}
		return checkWellFormed(g.b, bound, positive)
	case fOr:
		if err := checkWellFormed(g.a, bound, positive); err != nil {
			return err
		}
		return checkWellFormed(g.b, bound, positive)
	case fDia:
		return checkWellFormed(g.f, bound, positive)
	case fBox:
		return checkWellFormed(g.f, bound, positive)
	case fVar:
		binderParity, ok := bound[g.name]
		if !ok {
			return fmt.Errorf("mcl: free variable %s", g.name)
		}
		if positive != binderParity {
			return fmt.Errorf("mcl: variable %s occurs negatively (relative to its binder)", g.name)
		}
		return nil
	case fMu:
		return checkFixpoint(g.name, g.body, bound, positive)
	case fNu:
		return checkFixpoint(g.name, g.body, bound, positive)
	default:
		return fmt.Errorf("mcl: unknown formula %T", f)
	}
}

func checkFixpoint(name string, body Formula, bound map[string]bool, positive bool) error {
	prev, had := bound[name]
	bound[name] = positive // record the parity at the binding point
	err := checkWellFormed(body, bound, positive)
	if had {
		bound[name] = prev
	} else {
		delete(bound, name)
	}
	return err
}

// eval computes the denotation of f under the environment env. Negation of
// subformulas containing fixpoint variables is rejected by checkWellFormed,
// so complementation here is sound.
func eval(l *lts.LTS, f Formula, env map[string]StateSet) StateSet {
	n := l.NumStates()
	switch g := f.(type) {
	case fTrue:
		set := make(StateSet, n)
		for i := range set {
			set[i] = true
		}
		return set
	case fFalse:
		return make(StateSet, n)
	case fNot:
		sub := eval(l, g.f, env)
		out := make(StateSet, n)
		for i := range out {
			out[i] = !sub[i]
		}
		return out
	case fAnd:
		a := eval(l, g.a, env)
		b := eval(l, g.b, env)
		out := make(StateSet, n)
		for i := range out {
			out[i] = a[i] && b[i]
		}
		return out
	case fOr:
		a := eval(l, g.a, env)
		b := eval(l, g.b, env)
		out := make(StateSet, n)
		for i := range out {
			out[i] = a[i] || b[i]
		}
		return out
	case fDia:
		sub := eval(l, g.f, env)
		out := make(StateSet, n)
		l.EachTransition(func(t lts.Transition) {
			if !out[t.Src] && sub[t.Dst] && g.act.Matches(l.LabelName(t.Label)) {
				out[t.Src] = true
			}
		})
		return out
	case fBox:
		sub := eval(l, g.f, env)
		out := make(StateSet, n)
		for i := range out {
			out[i] = true
		}
		l.EachTransition(func(t lts.Transition) {
			if out[t.Src] && !sub[t.Dst] && g.act.Matches(l.LabelName(t.Label)) {
				out[t.Src] = false
			}
		})
		return out
	case fVar:
		set, ok := env[g.name]
		if !ok {
			panic("mcl: unbound variable " + g.name) // prevented by checkWellFormed
		}
		return set
	case fMu:
		cur := make(StateSet, n) // start from bottom
		return fixpoint(l, g.name, g.body, env, cur)
	case fNu:
		cur := make(StateSet, n) // start from top
		for i := range cur {
			cur[i] = true
		}
		return fixpoint(l, g.name, g.body, env, cur)
	default:
		panic(fmt.Sprintf("mcl: unknown formula %T", f))
	}
}

func fixpoint(l *lts.LTS, name string, body Formula, env map[string]StateSet, cur StateSet) StateSet {
	saved, had := env[name]
	defer func() {
		if had {
			env[name] = saved
		} else {
			delete(env, name)
		}
	}()
	for {
		env[name] = cur
		next := eval(l, body, env)
		if next.equal(cur) {
			return next
		}
		cur = next
	}
}

// Result bundles the outcome of a verification run for reporting.
type Result struct {
	Formula   string
	Holds     bool
	SatCount  int // number of satisfying states
	NumStates int
	Witness   []string // label trace for reachability-style diagnostics, if computed
}

// Verify evaluates f on l and assembles a Result. If f is (syntactically) a
// reachability property built by Reachable or ReachableAction, a shortest
// witness trace is attached when the property holds.
func Verify(l *lts.LTS, f Formula) (Result, error) {
	set, err := Sat(l, f)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Formula:   f.String(),
		Holds:     l.NumStates() > 0 && set[l.Initial()],
		SatCount:  set.Count(),
		NumStates: l.NumStates(),
	}
	if res.Holds {
		if w, ok := reachabilityWitness(l, f); ok {
			res.Witness = w
		}
	}
	return res, nil
}
