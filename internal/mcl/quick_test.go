package mcl

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"multival/internal/lts"
)

type randLTS struct{ L *lts.LTS }

func (randLTS) Generate(rng *rand.Rand, size int) reflect.Value {
	l := lts.Random(rng, lts.RandomConfig{
		States:  2 + rng.Intn(15),
		Labels:  1 + rng.Intn(3),
		Density: 0.8 + rng.Float64()*2,
		TauProb: rng.Float64() * 0.3,
		Connect: true,
	})
	return reflect.ValueOf(randLTS{l})
}

func qcfg() *quick.Config {
	return &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(12))}
}

func TestQuickBoxDiaDuality(t *testing.T) {
	// [a]f == not <a> not f, for closed f.
	fs := []Formula{True(), False(), Dia(Action("a"), True()), DeadlockFree()}
	acts := []ActionFormula{AnyAction(), TauAction(), Action("a"), Action("b")}
	prop := func(r randLTS, fi, ai uint8) bool {
		f := fs[int(fi)%len(fs)]
		a := acts[int(ai)%len(acts)]
		box, err := Sat(r.L, Box(a, f))
		if err != nil {
			return false
		}
		dual, err := Sat(r.L, Not(Dia(a, Not(f))))
		if err != nil {
			return false
		}
		return box.equal(dual)
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	fs := []Formula{Dia(Action("a"), True()), Dia(Action("b"), True()), DeadlockFree()}
	prop := func(r randLTS, i, j uint8) bool {
		f := fs[int(i)%len(fs)]
		g := fs[int(j)%len(fs)]
		left, err := Sat(r.L, Not(And(f, g)))
		if err != nil {
			return false
		}
		right, err := Sat(r.L, Or(Not(f), Not(g)))
		if err != nil {
			return false
		}
		return left.equal(right)
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickFixpointUnrolling(t *testing.T) {
	// mu X. f or <any>X  ==  f or <any>(mu X. f or <any>X).
	prop := func(r randLTS, ai uint8) bool {
		target := Dia(Action(string(rune('a'+ai%3))), True())
		lhs, err := Sat(r.L, Reachable(target))
		if err != nil {
			return false
		}
		rhs, err := Sat(r.L, Or(target, Dia(AnyAction(), Reachable(target))))
		if err != nil {
			return false
		}
		return lhs.equal(rhs)
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickInvariantImpliesEverywhereReachable(t *testing.T) {
	// If AG f holds at the initial state, then f holds at every
	// reachable state.
	prop := func(r randLTS, ai uint8) bool {
		f := Dia(AnyAction(), True()) // "can move"
		if ai%2 == 0 {
			f = Not(Dia(Action("a"), True()))
		}
		agHolds, err := Check(r.L, Invariant(f))
		if err != nil {
			return false
		}
		if !agHolds {
			return true // nothing to verify
		}
		fset, err := Sat(r.L, f)
		if err != nil {
			return false
		}
		for s, reach := range r.L.Reachable() {
			if reach && !fset[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickDeadlockFreeMatchesStructure(t *testing.T) {
	prop := func(r randLTS) bool {
		holds, err := Check(r.L, DeadlockFree())
		if err != nil {
			return false
		}
		// Structural check over reachable states.
		reach := r.L.Reachable()
		structural := true
		for s, ok := range reach {
			if ok && r.L.IsDeadlock(lts.State(s)) {
				structural = false
			}
		}
		return holds == structural
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickParserAgreesWithConstructors(t *testing.T) {
	pairs := []struct {
		src string
		f   Formula
	}{
		{"<a> true", Dia(Action("a"), True())},
		{"[tau] false", Box(TauAction(), False())},
		{"mu X . (<a> true or <true> X)", Reachable(Dia(Action("a"), True()))},
		{"nu X . (<true> true and [true] X)", DeadlockFree()},
	}
	prop := func(r randLTS, pi uint8) bool {
		p := pairs[int(pi)%len(pairs)]
		parsed, err := Parse(p.src)
		if err != nil {
			return false
		}
		s1, err := Sat(r.L, parsed)
		if err != nil {
			return false
		}
		s2, err := Sat(r.L, p.f)
		if err != nil {
			return false
		}
		return s1.equal(s2)
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}
