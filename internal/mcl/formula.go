// Package mcl implements an action-based modal mu-calculus model checker
// over labeled transition systems, playing the role of CADP's EVALUATOR in
// the Multival verification flow.
//
// Formulas are built from boolean connectives, the modalities ⟨α⟩φ and
// [α]φ whose action formula α selects transition labels, and the least/
// greatest fixpoint operators mu X.φ / nu X.φ. Derived temporal operators
// (reachability, invariance, inevitability, weak modalities, deadlock
// freedom) are provided as constructors, and a textual syntax is accepted
// by Parse.
package mcl

import (
	"fmt"
	"regexp"
	"strings"

	"multival/internal/lts"
)

// ActionFormula is a predicate on transition labels.
type ActionFormula interface {
	// Matches reports whether the action formula holds for a label.
	Matches(label string) bool
	// String renders the action formula in concrete syntax.
	String() string
}

type afAny struct{}
type afTau struct{}
type afLiteral struct{ label string }
type afRegex struct{ re *regexp.Regexp }
type afNot struct{ a ActionFormula }
type afAnd struct{ a, b ActionFormula }
type afOr struct{ a, b ActionFormula }

// AnyAction matches every label, including tau.
func AnyAction() ActionFormula { return afAny{} }

// TauAction matches exactly the internal action.
func TauAction() ActionFormula { return afTau{} }

// Action matches exactly the given label.
func Action(label string) ActionFormula { return afLiteral{label} }

// ActionRegex matches labels against an anchored regular expression.
func ActionRegex(pattern string) (ActionFormula, error) {
	re, err := regexp.Compile("^(?:" + pattern + ")$")
	if err != nil {
		return nil, fmt.Errorf("mcl: bad action pattern %q: %w", pattern, err)
	}
	return afRegex{re}, nil
}

// MustActionRegex is ActionRegex that panics on a bad pattern; for use with
// compile-time constant patterns.
func MustActionRegex(pattern string) ActionFormula {
	a, err := ActionRegex(pattern)
	if err != nil {
		panic(err)
	}
	return a
}

// NotAction negates an action formula.
func NotAction(a ActionFormula) ActionFormula { return afNot{a} }

// AndAction conjoins action formulas.
func AndAction(a, b ActionFormula) ActionFormula { return afAnd{a, b} }

// OrAction disjoins action formulas.
func OrAction(a, b ActionFormula) ActionFormula { return afOr{a, b} }

// VisibleAction matches every label except tau.
func VisibleAction() ActionFormula { return afNot{afTau{}} }

func (afAny) Matches(string) bool         { return true }
func (afAny) String() string              { return "true" }
func (afTau) Matches(label string) bool   { return label == lts.Tau }
func (afTau) String() string              { return "tau" }
func (a afLiteral) Matches(l string) bool { return l == a.label }
func (a afLiteral) String() string        { return quoteAction(a.label) }
func (a afRegex) Matches(l string) bool   { return a.re.MatchString(l) }
func (a afRegex) String() string          { return "/" + trimAnchor(a.re.String()) + "/" }
func (a afNot) Matches(l string) bool     { return !a.a.Matches(l) }
func (a afNot) String() string            { return "~" + a.a.String() }
func (a afAnd) Matches(l string) bool     { return a.a.Matches(l) && a.b.Matches(l) }
func (a afAnd) String() string            { return "(" + a.a.String() + " & " + a.b.String() + ")" }
func (a afOr) Matches(l string) bool      { return a.a.Matches(l) || a.b.Matches(l) }
func (a afOr) String() string             { return "(" + a.a.String() + " | " + a.b.String() + ")" }

func trimAnchor(s string) string {
	s = strings.TrimPrefix(s, "^(?:")
	return strings.TrimSuffix(s, ")$")
}

func quoteAction(label string) string {
	for i := 0; i < len(label); i++ {
		c := label[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
		if !ok {
			return fmt.Sprintf("%q", label)
		}
	}
	if label == "true" || label == "tau" {
		return fmt.Sprintf("%q", label)
	}
	return label
}

// Formula is a state formula of the modal mu-calculus.
type Formula interface {
	String() string
	isFormula()
}

type (
	fTrue  struct{}
	fFalse struct{}
	fNot   struct{ f Formula }
	fAnd   struct{ a, b Formula }
	fOr    struct{ a, b Formula }
	fDia   struct {
		act ActionFormula
		f   Formula
	}
	fBox struct {
		act ActionFormula
		f   Formula
	}
	fVar struct{ name string }
	fMu  struct {
		name string
		body Formula
	}
	fNu struct {
		name string
		body Formula
	}
)

func (fTrue) isFormula()  {}
func (fFalse) isFormula() {}
func (fNot) isFormula()   {}
func (fAnd) isFormula()   {}
func (fOr) isFormula()    {}
func (fDia) isFormula()   {}
func (fBox) isFormula()   {}
func (fVar) isFormula()   {}
func (fMu) isFormula()    {}
func (fNu) isFormula()    {}

func (fTrue) String() string  { return "true" }
func (fFalse) String() string { return "false" }
func (f fNot) String() string { return "not " + paren(f.f) }
func (f fAnd) String() string { return paren(f.a) + " and " + paren(f.b) }
func (f fOr) String() string  { return paren(f.a) + " or " + paren(f.b) }
func (f fDia) String() string { return "<" + f.act.String() + "> " + paren(f.f) }
func (f fBox) String() string { return "[" + f.act.String() + "] " + paren(f.f) }
func (f fVar) String() string { return f.name }
func (f fMu) String() string  { return "mu " + f.name + " . " + f.body.String() }
func (f fNu) String() string  { return "nu " + f.name + " . " + f.body.String() }

func paren(f Formula) string {
	switch f.(type) {
	case fTrue, fFalse, fVar, fDia, fBox, fNot:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// True is the formula satisfied by every state.
func True() Formula { return fTrue{} }

// False is the unsatisfiable formula.
func False() Formula { return fFalse{} }

// Not negates a formula. Fixpoint variables may only occur under an even
// number of negations (checked by the evaluator).
func Not(f Formula) Formula { return fNot{f} }

// And conjoins formulas (variadic; And() is True).
func And(fs ...Formula) Formula {
	if len(fs) == 0 {
		return True()
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = fAnd{out, f}
	}
	return out
}

// Or disjoins formulas (variadic; Or() is False).
func Or(fs ...Formula) Formula {
	if len(fs) == 0 {
		return False()
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = fOr{out, f}
	}
	return out
}

// Implies is material implication.
func Implies(a, b Formula) Formula { return fOr{fNot{a}, b} }

// Dia is the diamond modality ⟨act⟩f: some act-transition leads to a state
// satisfying f.
func Dia(act ActionFormula, f Formula) Formula { return fDia{act, f} }

// Box is the box modality [act]f: every act-transition leads to a state
// satisfying f.
func Box(act ActionFormula, f Formula) Formula { return fBox{act, f} }

// Var references a fixpoint variable.
func Var(name string) Formula { return fVar{name} }

// Mu is the least fixpoint mu name . body.
func Mu(name string, body Formula) Formula { return fMu{name, body} }

// Nu is the greatest fixpoint nu name . body.
func Nu(name string, body Formula) Formula { return fNu{name, body} }
