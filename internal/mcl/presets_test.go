package mcl

import (
	"strings"
	"testing"

	"multival/internal/lts"
)

// tauCycleLTS builds 0 -a-> 1 -tau-> 2 -tau-> 1: a reachable internal
// cycle (livelock) with no deadlock.
func tauCycleLTS() *lts.LTS {
	l := lts.New("tau-cycle")
	l.AddStates(3)
	l.AddTransition(0, "a", 1)
	l.AddTransition(1, lts.Tau, 2)
	l.AddTransition(2, lts.Tau, 1)
	l.SetInitial(0)
	return l
}

// TestPresetsOnKnownModels pins the derived operators of presets.go to
// hand-checked verdicts on the three small fixtures, so a regression in
// the preset constructions (and not just the core evaluator) fails loudly.
func TestPresetsOnKnownModels(t *testing.T) {
	diamond, ring, tauCycle := diamondLTS(), ringLTS(), tauCycleLTS()
	cases := []struct {
		name string
		l    *lts.LTS
		f    Formula
		want bool
	}{
		{"diamond: b reachable", diamond, ReachableAction(Action("b")), true},
		{"diamond: z not reachable", diamond, ReachableAction(Action("z")), false},
		{"diamond: deadlock state 3", diamond, DeadlockFree(), false},
		{"diamond: inevitably stuck", diamond, Inevitable(Not(Dia(AnyAction(), True()))), true},
		{"diamond: invariant fails at 3", diamond, Invariant(Dia(AnyAction(), True())), false},
		{"diamond: never z holds", diamond, NeverEnabled(Action("z")), true},
		{"diamond: never b fails", diamond, NeverEnabled(Action("b")), false},
		{"diamond: a responded by b", diamond, Response(Action("a"), Action("b")), true},
		{"diamond: a not responded by d", diamond, Response(Action("a"), Action("d")), false},
		{"ring: deadlock-free", ring, DeadlockFree(), true},
		{"ring: invariant some move", ring, Invariant(Dia(AnyAction(), True())), true},
		{"ring: c inevitable", ring, Inevitable(Dia(Action("c"), True())), true}, // cycle visits 2
		{"diamond: b not inevitable", diamond, Inevitable(Dia(Action("b"), True())), false},
		{"ring: c reachable", ring, ReachableAction(Action("c")), true},
		{"ring: every a responded by b", ring, Response(Action("a"), Action("b")), true},
		{"ring: no livelock", ring, Livelock(), false},
		{"tau-cycle: livelock", tauCycle, Livelock(), true},
		{"tau-cycle: deadlock-free", tauCycle, DeadlockFree(), true},
		{"tau-cycle: tau-reach only after a", tauCycle, TauReach(Dia(TauAction(), True())), false},
		{"tau-cycle: weak dia a", tauCycle, WeakDia(Action("a"), True()), true},
		{"tau-cycle: weak dia z", tauCycle, WeakDia(Action("z"), True()), false},
	}
	for _, c := range cases {
		got, err := Check(c.l, c.f)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: got %v, want %v (formula %s)", c.name, got, c.want, c.f)
		}
	}
}

// TestPresetsParseBack checks that every preset prints to a formula the
// parser accepts and that re-checking the parsed form gives the same
// verdict — the server caches check artifacts by the query string, so
// String/Parse round-trips must stay faithful.
func TestPresetsParseBack(t *testing.T) {
	l := diamondLTS()
	presets := []Formula{
		DeadlockFree(),
		Livelock(),
		ReachableAction(Action("b")),
		NeverEnabled(Action("z")),
		Inevitable(Dia(Action("b"), True())),
		Response(Action("a"), Action("b")),
		Invariant(Dia(AnyAction(), True())),
	}
	for _, f := range presets {
		src := f.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("preset %s does not parse back: %v", src, err)
		}
		want, err := Check(l, f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Check(l, parsed)
		if err != nil {
			t.Fatalf("checking parsed %s: %v", src, err)
		}
		if got != want {
			t.Errorf("preset %s: parsed verdict %v != constructed %v", src, got, want)
		}
	}
}

// TestParseQuery covers the preset vocabulary of the serve layer and the
// raw-formula fallback.
func TestParseQuery(t *testing.T) {
	diamond, ring := diamondLTS(), ringLTS()
	cases := []struct {
		query string
		l     *lts.LTS
		want  bool
	}{
		{"deadlock", ring, true},
		{"deadlock", diamond, false},
		{"deadlock-free", ring, true},
		{"livelock", ring, false},
		{"reachable:b", diamond, true},
		{"reachable:z", diamond, false},
		{"never:z", diamond, true},
		{"never:b", diamond, false},
		{"inevitable:c", ring, true},
		{"inevitable:b", diamond, false},
		{"response:a->b", ring, true},
		{"response: a -> b ", ring, true}, // whitespace-tolerant
		{"<a> true", diamond, true},       // raw formula fallback
		{"mu X . (<c> true or <true> X)", diamond, true},
	}
	for _, c := range cases {
		f, err := ParseQuery(c.query)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", c.query, err)
		}
		got, err := Check(c.l, f)
		if err != nil {
			t.Fatalf("checking %q: %v", c.query, err)
		}
		if got != c.want {
			t.Errorf("query %q: got %v, want %v", c.query, got, c.want)
		}
	}
}

// TestParseQueryErrors: malformed queries are rejected with a message
// naming the problem, not silently parsed as formulas.
func TestParseQueryErrors(t *testing.T) {
	for _, q := range []string{
		"", "  ", "deadlock:arg", "livelock:x", "reachable:", "never:",
		"inevitable:", "response:a", "response:->b", "not a formula ((",
	} {
		if _, err := ParseQuery(q); err == nil {
			t.Errorf("ParseQuery(%q) unexpectedly succeeded", q)
		} else if !strings.Contains(err.Error(), "mcl:") {
			t.Errorf("ParseQuery(%q) error %q lacks package prefix", q, err)
		}
	}
}
