package mcl

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a formula in the concrete syntax below (a pragmatic subset
// of the CADP EVALUATOR input language):
//
//	formula  ::= "mu" IDENT "." formula | "nu" IDENT "." formula
//	           | implication
//	impl     ::= disj ("->" formula)?
//	disj     ::= conj ("or" conj)*
//	conj     ::= unary ("and" unary)*
//	unary    ::= "not" unary
//	           | "<" actf ">" unary | "[" actf "]" unary
//	           | "mu" IDENT "." formula | "nu" IDENT "." formula
//	           | "true" | "false" | IDENT | "(" formula ")"
//	actf     ::= adisj
//	adisj    ::= aconj ("|" aconj)*
//	aconj    ::= aunary ("&" aunary)*
//	aunary   ::= "~" aunary | "true" | "any" | "tau" | IDENT
//	           | STRING | "/" REGEX "/" | "(" actf ")"
//
// IDENT is [A-Za-z_][A-Za-z0-9_]*. STRING is double-quoted with backslash
// escapes. Inside an action formula, an IDENT is an action literal; in a
// state formula it is a fixpoint variable.
func Parse(input string) (Formula, error) {
	p := &parser{src: input}
	p.next()
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %q after formula", p.tok.text)
	}
	return f, nil
}

// MustParse is Parse that panics on error; for compile-time constant
// formulas.
func MustParse(input string) Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokRegex
	tokLAngle // <
	tokRAngle // >
	tokLBrack // [
	tokRBrack // ]
	tokLParen // (
	tokRParen // )
	tokDot    // .
	tokArrow  // ->
	tokTilde  // ~
	tokAmp    // &
	tokPipe   // |
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	src string
	pos int
	tok token
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("mcl: parse error at offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) next() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.src) {
		p.tok = token{tokEOF, "", start}
		return
	}
	c := p.src[p.pos]
	switch {
	case c == '<':
		p.pos++
		p.tok = token{tokLAngle, "<", start}
	case c == '>':
		p.pos++
		p.tok = token{tokRAngle, ">", start}
	case c == '[':
		p.pos++
		p.tok = token{tokLBrack, "[", start}
	case c == ']':
		p.pos++
		p.tok = token{tokRBrack, "]", start}
	case c == '(':
		p.pos++
		p.tok = token{tokLParen, "(", start}
	case c == ')':
		p.pos++
		p.tok = token{tokRParen, ")", start}
	case c == '.':
		p.pos++
		p.tok = token{tokDot, ".", start}
	case c == '~':
		p.pos++
		p.tok = token{tokTilde, "~", start}
	case c == '&':
		p.pos++
		p.tok = token{tokAmp, "&", start}
	case c == '|':
		p.pos++
		p.tok = token{tokPipe, "|", start}
	case c == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '>':
		p.pos += 2
		p.tok = token{tokArrow, "->", start}
	case c == '"':
		p.pos++
		var b strings.Builder
		for p.pos < len(p.src) && p.src[p.pos] != '"' {
			if p.src[p.pos] == '\\' && p.pos+1 < len(p.src) {
				p.pos++
			}
			b.WriteByte(p.src[p.pos])
			p.pos++
		}
		if p.pos >= len(p.src) {
			p.tok = token{tokEOF, "unterminated string", start}
			return
		}
		p.pos++ // closing quote
		p.tok = token{tokString, b.String(), start}
	case c == '/':
		p.pos++
		var b strings.Builder
		for p.pos < len(p.src) && p.src[p.pos] != '/' {
			if p.src[p.pos] == '\\' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '/' {
				p.pos++ // \/ escapes a slash inside the pattern
			}
			b.WriteByte(p.src[p.pos])
			p.pos++
		}
		if p.pos >= len(p.src) {
			p.tok = token{tokEOF, "unterminated regex", start}
			return
		}
		p.pos++
		p.tok = token{tokRegex, b.String(), start}
	case isIdentStart(c):
		for p.pos < len(p.src) && isIdentPart(p.src[p.pos]) {
			p.pos++
		}
		p.tok = token{tokIdent, p.src[start:p.pos], start}
	default:
		p.tok = token{tokEOF, fmt.Sprintf("invalid character %q", c), start}
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func (p *parser) expect(kind tokKind, what string) error {
	if p.tok.kind != kind {
		return p.errorf("expected %s, got %q", what, p.tok.text)
	}
	p.next()
	return nil
}

func (p *parser) parseFormula() (Formula, error) {
	return p.parseImpl()
}

func (p *parser) parseImpl() (Formula, error) {
	left, err := p.parseDisj()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokArrow {
		p.next()
		right, err := p.parseImpl()
		if err != nil {
			return nil, err
		}
		return Implies(left, right), nil
	}
	return left, nil
}

func (p *parser) parseDisj() (Formula, error) {
	left, err := p.parseConj()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokIdent && p.tok.text == "or" {
		p.next()
		right, err := p.parseConj()
		if err != nil {
			return nil, err
		}
		left = Or(left, right)
	}
	return left, nil
}

func (p *parser) parseConj() (Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokIdent && p.tok.text == "and" {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = And(left, right)
	}
	return left, nil
}

func (p *parser) parseUnary() (Formula, error) {
	switch {
	case p.tok.kind == tokIdent && p.tok.text == "not":
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil

	case p.tok.kind == tokLAngle:
		p.next()
		act, err := p.parseActDisj()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRAngle, "'>'"); err != nil {
			return nil, err
		}
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Dia(act, f), nil

	case p.tok.kind == tokLBrack:
		p.next()
		act, err := p.parseActDisj()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRBrack, "']'"); err != nil {
			return nil, err
		}
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Box(act, f), nil

	case p.tok.kind == tokIdent && (p.tok.text == "mu" || p.tok.text == "nu"):
		kw := p.tok.text
		p.next()
		if p.tok.kind != tokIdent {
			return nil, p.errorf("expected variable after %s", kw)
		}
		name := p.tok.text
		p.next()
		if err := p.expect(tokDot, "'.'"); err != nil {
			return nil, err
		}
		body, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if kw == "mu" {
			return Mu(name, body), nil
		}
		return Nu(name, body), nil

	case p.tok.kind == tokIdent && p.tok.text == "true":
		p.next()
		return True(), nil

	case p.tok.kind == tokIdent && p.tok.text == "false":
		p.next()
		return False(), nil

	case p.tok.kind == tokIdent:
		name := p.tok.text
		p.next()
		return Var(name), nil

	case p.tok.kind == tokLParen:
		p.next()
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return f, nil

	default:
		return nil, p.errorf("unexpected %q in formula", p.tok.text)
	}
}

func (p *parser) parseActDisj() (ActionFormula, error) {
	left, err := p.parseActConj()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPipe {
		p.next()
		right, err := p.parseActConj()
		if err != nil {
			return nil, err
		}
		left = OrAction(left, right)
	}
	return left, nil
}

func (p *parser) parseActConj() (ActionFormula, error) {
	left, err := p.parseActUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAmp {
		p.next()
		right, err := p.parseActUnary()
		if err != nil {
			return nil, err
		}
		left = AndAction(left, right)
	}
	return left, nil
}

func (p *parser) parseActUnary() (ActionFormula, error) {
	switch p.tok.kind {
	case tokTilde:
		p.next()
		a, err := p.parseActUnary()
		if err != nil {
			return nil, err
		}
		return NotAction(a), nil
	case tokIdent:
		text := p.tok.text
		p.next()
		switch text {
		case "true", "any":
			return AnyAction(), nil
		case "tau":
			return TauAction(), nil
		default:
			return Action(text), nil
		}
	case tokString:
		text := p.tok.text
		p.next()
		return Action(text), nil
	case tokRegex:
		pat := p.tok.text
		p.next()
		return ActionRegex(pat)
	case tokLParen:
		p.next()
		a, err := p.parseActDisj()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return a, nil
	default:
		return nil, p.errorf("unexpected %q in action formula", p.tok.text)
	}
}
