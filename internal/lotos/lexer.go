// Package lotos provides a textual front-end for the process calculus of
// package process, with a concrete syntax close to LOTOS (ISO 8807) as
// used in the Multival project. A specification is a list of process
// definitions followed by a root behaviour:
//
//	(* a one-place buffer *)
//	process Buf :=
//	    put ?x:0..3 ; get !x ; Buf
//	endproc
//	behaviour
//	    hide mid in (Buf [] stop)
//
// Supported constructs: action prefix with offers (!e, ?x:lo..hi, ?b:bool),
// guards [e] ->, choice [], parallel ||| and |[g1,g2]|, hiding, renaming,
// sequential composition >> (accept ... in), let, exit with results, and
// recursive process instantiation. Comments are (* ... *) or -- to end of
// line.
package lotos

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tLParen   // (
	tRParen   // )
	tComma    // ,
	tSemi     // ;
	tBang     // !
	tQuest    // ?
	tColon    // :
	tDotDot   // ..
	tArrow    // ->
	tChoice   // []
	tLBrack   // [
	tRBrack   // ]
	tParOpen  // |[
	tParClose // ]|
	tInter    // |||
	tSeq      // >>
	tDisable  // [>
	tDefine   // :=
	tEq       // ==
	tNe       // !=
	tLt       // <
	tLe       // <=
	tGt       // >
	tGe       // >=
	tPlus     // +
	tMinus    // -
	tStar     // *
)

var tokNames = map[tokKind]string{
	tEOF: "end of input", tIdent: "identifier", tInt: "integer",
	tLParen: "'('", tRParen: "')'", tComma: "','", tSemi: "';'",
	tBang: "'!'", tQuest: "'?'", tColon: "':'", tDotDot: "'..'",
	tArrow: "'->'", tChoice: "'[]'", tLBrack: "'['", tRBrack: "']'",
	tParOpen: "'|['", tParClose: "']|'", tInter: "'|||'", tSeq: "'>>'",
	tDisable: "'[>'",
	tDefine:  "':='", tEq: "'=='", tNe: "'!='", tLt: "'<'", tLe: "'<='",
	tGt: "'>'", tGe: "'>='", tPlus: "'+'", tMinus: "'-'", tStar: "'*'",
}

type token struct {
	kind tokKind
	text string
	n    int // integer payload for tInt
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tIdent || t.kind == tInt {
		return fmt.Sprintf("%q", t.text)
	}
	return tokNames[t.kind]
}

// Error is a syntax error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("lotos: %d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) errorf(format string, args ...interface{}) *Error {
	return &Error{lx.line, lx.col, fmt.Sprintf(format, args...)}
}

func (lx *lexer) advance(n int) {
	for i := 0; i < n && lx.pos < len(lx.src); i++ {
		if lx.src[lx.pos] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.pos++
	}
}

func (lx *lexer) peek(off int) byte {
	if lx.pos+off < len(lx.src) {
		return lx.src[lx.pos+off]
	}
	return 0
}

// skipSpace consumes whitespace and comments.
func (lx *lexer) skipSpace() error {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case unicode.IsSpace(rune(c)):
			lx.advance(1)
		case c == '-' && lx.peek(1) == '-':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance(1)
			}
		case c == '(' && lx.peek(1) == '*':
			startLine, startCol := lx.line, lx.col
			lx.advance(2)
			depth := 1
			for lx.pos < len(lx.src) && depth > 0 {
				if lx.src[lx.pos] == '(' && lx.peek(1) == '*' {
					depth++
					lx.advance(2)
				} else if lx.src[lx.pos] == '*' && lx.peek(1) == ')' {
					depth--
					lx.advance(2)
				} else {
					lx.advance(1)
				}
			}
			if depth > 0 {
				return &Error{startLine, startCol, "unterminated comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *lexer) next() (token, error) {
	if err := lx.skipSpace(); err != nil {
		return token{}, err
	}
	line, col := lx.line, lx.col
	mk := func(k tokKind, text string, n int) token {
		return token{kind: k, text: text, n: n, line: line, col: col}
	}
	if lx.pos >= len(lx.src) {
		return mk(tEOF, "", 0), nil
	}
	c := lx.src[lx.pos]
	switch {
	case c == '(':
		lx.advance(1)
		return mk(tLParen, "(", 0), nil
	case c == ')':
		lx.advance(1)
		return mk(tRParen, ")", 0), nil
	case c == ',':
		lx.advance(1)
		return mk(tComma, ",", 0), nil
	case c == ';':
		lx.advance(1)
		return mk(tSemi, ";", 0), nil
	case c == '+':
		lx.advance(1)
		return mk(tPlus, "+", 0), nil
	case c == '*':
		lx.advance(1)
		return mk(tStar, "*", 0), nil
	case c == '!':
		if lx.peek(1) == '=' {
			lx.advance(2)
			return mk(tNe, "!=", 0), nil
		}
		lx.advance(1)
		return mk(tBang, "!", 0), nil
	case c == '?':
		lx.advance(1)
		return mk(tQuest, "?", 0), nil
	case c == ':':
		if lx.peek(1) == '=' {
			lx.advance(2)
			return mk(tDefine, ":=", 0), nil
		}
		lx.advance(1)
		return mk(tColon, ":", 0), nil
	case c == '.':
		if lx.peek(1) == '.' {
			lx.advance(2)
			return mk(tDotDot, "..", 0), nil
		}
		return token{}, lx.errorf("unexpected '.'")
	case c == '-':
		if lx.peek(1) == '>' {
			lx.advance(2)
			return mk(tArrow, "->", 0), nil
		}
		lx.advance(1)
		return mk(tMinus, "-", 0), nil
	case c == '[':
		if lx.peek(1) == ']' {
			lx.advance(2)
			return mk(tChoice, "[]", 0), nil
		}
		if lx.peek(1) == '>' {
			lx.advance(2)
			return mk(tDisable, "[>", 0), nil
		}
		lx.advance(1)
		return mk(tLBrack, "[", 0), nil
	case c == ']':
		if lx.peek(1) == '|' {
			lx.advance(2)
			return mk(tParClose, "]|", 0), nil
		}
		lx.advance(1)
		return mk(tRBrack, "]", 0), nil
	case c == '|':
		if lx.peek(1) == '|' && lx.peek(2) == '|' {
			lx.advance(3)
			return mk(tInter, "|||", 0), nil
		}
		if lx.peek(1) == '[' {
			lx.advance(2)
			return mk(tParOpen, "|[", 0), nil
		}
		return token{}, lx.errorf("unexpected '|' (use '|||' or '|[...]|')")
	case c == '>':
		if lx.peek(1) == '>' {
			lx.advance(2)
			return mk(tSeq, ">>", 0), nil
		}
		if lx.peek(1) == '=' {
			lx.advance(2)
			return mk(tGe, ">=", 0), nil
		}
		lx.advance(1)
		return mk(tGt, ">", 0), nil
	case c == '<':
		if lx.peek(1) == '=' {
			lx.advance(2)
			return mk(tLe, "<=", 0), nil
		}
		lx.advance(1)
		return mk(tLt, "<", 0), nil
	case c == '=':
		if lx.peek(1) == '=' {
			lx.advance(2)
			return mk(tEq, "==", 0), nil
		}
		return token{}, lx.errorf("unexpected '=' (use '==' for equality)")
	case c >= '0' && c <= '9':
		start := lx.pos
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.advance(1)
		}
		text := lx.src[start:lx.pos]
		n, err := strconv.Atoi(text)
		if err != nil {
			return token{}, lx.errorf("bad integer %q", text)
		}
		return mk(tInt, text, n), nil
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
			lx.advance(1)
		}
		return mk(tIdent, lx.src[start:lx.pos], 0), nil
	default:
		return token{}, lx.errorf("invalid character %q", string(rune(c)))
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// keywords that cannot be used as identifiers (gate, variable or process
// names).
var keywords = map[string]bool{
	"process": true, "endproc": true, "behaviour": true, "behavior": true,
	"hide": true, "rename": true, "let": true, "in": true, "accept": true,
	"stop": true, "exit": true, "bool": true, "true": true, "false": true,
	"not": true, "and": true, "or": true, "mod": true, "div": true,
	"if": true, "then": true, "else": true, "specification": true,
}

func isKeyword(s string) bool { return keywords[strings.ToLower(s)] }
