package lotos

import (
	"multival/internal/process"
)

// Expression grammar (loosest to tightest):
//
//	expr    ::= "if" expr "then" expr "else" expr | orE
//	orE     ::= andE ("or" andE)*
//	andE    ::= notE ("and" notE)*
//	notE    ::= "not" notE | cmp
//	cmp     ::= add (("=="|"!="|"<"|"<="|">"|">=") add)?
//	add     ::= mul (("+"|"-") mul)*
//	mul     ::= unary (("*"|"div"|"mod") unary)*
//	unary   ::= "-" unary | primary
//	primary ::= INT | "true" | "false" | IDENT | "(" expr ")"
func (p *parser) parseExpr() (process.Expr, error) {
	if p.isKw("if") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if ok, err := p.acceptKw("then"); err != nil {
			return nil, err
		} else if !ok {
			return nil, p.errorf("expected 'then'")
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if ok, err := p.acceptKw("else"); err != nil {
			return nil, err
		} else if !ok {
			return nil, p.errorf("expected 'else'")
		}
		b, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return process.Ite(c, a, b), nil
	}
	return p.parseOr()
}

func (p *parser) parseOr() (process.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKw("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = process.OrE(left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (process.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKw("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = process.AndE(left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (process.Expr, error) {
	if p.isKw("not") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return process.NotExpr(x), nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (process.Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	var mk func(a, b process.Expr) process.Expr
	switch p.tok.kind {
	case tEq:
		mk = process.Eq
	case tNe:
		mk = process.Ne
	case tLt:
		mk = process.Lt
	case tLe:
		mk = process.Le
	case tGt:
		mk = process.Gt
	case tGe:
		mk = process.Ge
	default:
		return left, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	right, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return mk(left, right), nil
}

func (p *parser) parseAdd() (process.Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tPlus || p.tok.kind == tMinus {
		op := p.tok.kind
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		if op == tPlus {
			left = process.Add(left, right)
		} else {
			left = process.Sub(left, right)
		}
	}
	return left, nil
}

func (p *parser) parseMul() (process.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var mk func(a, b process.Expr) process.Expr
		switch {
		case p.tok.kind == tStar:
			mk = process.Mul
		case p.isKw("div"):
			mk = process.Div
		case p.isKw("mod"):
			mk = process.Mod
		default:
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = mk(left, right)
	}
}

func (p *parser) parseUnary() (process.Expr, error) {
	if p.tok.kind == tMinus {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return process.Neg{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (process.Expr, error) {
	switch {
	case p.tok.kind == tInt:
		n := p.tok.n
		return process.Int(n), p.advance()
	case p.isKw("true"):
		return process.Bool(true), p.advance()
	case p.isKw("false"):
		return process.Bool(false), p.advance()
	case p.tok.kind == tIdent:
		if isKeyword(p.tok.text) {
			return nil, p.errorf("unexpected keyword %q in expression", p.tok.text)
		}
		name := p.tok.text
		return process.V(name), p.advance()
	case p.tok.kind == tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("unexpected %s in expression", p.tok)
	}
}
