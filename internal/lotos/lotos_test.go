package lotos

import (
	"strings"
	"testing"

	"multival/internal/bisim"
	"multival/internal/lts"
	"multival/internal/process"
)

func genSrc(t *testing.T, src string) *lts.LTS {
	t.Helper()
	sys, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	l, err := sys.Generate(process.GenOptions{MaxStates: 100000})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return l
}

func TestSimplePrefix(t *testing.T) {
	l := genSrc(t, "a; b; stop")
	if l.NumStates() != 3 || l.NumTransitions() != 2 {
		t.Fatalf("a;b;stop: %d/%d", l.NumStates(), l.NumTransitions())
	}
}

func TestOffersAndGuards(t *testing.T) {
	l := genSrc(t, "g ?x:0..2 ; [x > 0] -> h !(x*10) ; stop")
	// x in {0,1,2}; only x>0 proceed to h.
	if l.LookupLabel("h !10") < 0 || l.LookupLabel("h !20") < 0 {
		t.Fatalf("labels = %v", l.Labels())
	}
	if l.LookupLabel("h !0") >= 0 {
		t.Fatal("guard failed to block x=0")
	}
}

func TestChoiceAndPar(t *testing.T) {
	l := genSrc(t, "(a; stop [] b; stop) ||| c; stop")
	trimmed, _ := l.Trim()
	// States: ({a|b},c), (done,c), ({a|b},done), (done,done) = at least 4.
	if trimmed.NumTransitions() == 0 {
		t.Fatal("no transitions")
	}
	for _, lab := range []string{"a", "b", "c"} {
		if trimmed.LookupLabel(lab) < 0 {
			t.Fatalf("missing %s", lab)
		}
	}
}

func TestSyncGate(t *testing.T) {
	l := genSrc(t, "g !1 ; stop |[g]| g ?x:0..3 ; h !x ; stop")
	if l.LookupLabel("g !1") < 0 || l.LookupLabel("h !1") < 0 {
		t.Fatalf("labels = %v", l.Labels())
	}
	if l.LookupLabel("h !2") >= 0 {
		t.Fatal("negotiation leaked")
	}
}

func TestHideRenameLetExit(t *testing.T) {
	l := genSrc(t, `hide g in rename h -> z in let n := 2+3 in g; h !n; stop`)
	if l.LookupLabel(lts.Tau) < 0 {
		t.Fatal("hide produced no tau")
	}
	if l.LookupLabel("z !5") < 0 {
		t.Fatalf("labels = %v", l.Labels())
	}
}

func TestSeqAccept(t *testing.T) {
	l := genSrc(t, "(g ?x:1..2 ; exit(x+10)) >> accept y in h !y ; stop")
	if l.LookupLabel("h !11") < 0 || l.LookupLabel("h !12") < 0 {
		t.Fatalf("labels = %v", l.Labels())
	}
}

func TestProcessDefinitions(t *testing.T) {
	src := `
	(* a bounded counter *)
	process Count(n) :=
	    [n > 0] -> dec; Count(n - 1)
	 [] [n == 0] -> zero; stop
	endproc
	behaviour
	    Count(2)
	`
	l := genSrc(t, src)
	trimmed, _ := l.Trim()
	if trimmed.NumStates() != 4 || trimmed.NumTransitions() != 3 {
		t.Fatalf("Count(2): %d/%d\n%s", trimmed.NumStates(), trimmed.NumTransitions(), trimmed.Dump())
	}
}

func TestRecursiveBuffer(t *testing.T) {
	src := `
	process Buf :=
	    put ?x:0..1 ; get !x ; Buf
	endproc
	behaviour Buf
	`
	l := genSrc(t, src)
	q, _ := bisim.Minimize(l, bisim.Strong)
	// Buffer: 1 empty state + 2 full states (x=0,1) = 3.
	if q.NumStates() != 3 {
		t.Fatalf("buffer minimizes to %d states, want 3\n%s", q.NumStates(), q.Dump())
	}
}

func TestTwoPlacePipelineEquivalence(t *testing.T) {
	// Two one-place buffers chained with a hidden middle gate form a
	// two-place FIFO; check a characteristic weak trace property instead
	// of full equivalence: after two puts, a get must be available.
	src := `
	process Buf1 :=
	    put ?x:0..1 ; mid !x ; Buf1
	endproc
	process Buf2 :=
	    mid ?x:0..1 ; get !x ; Buf2
	endproc
	behaviour
	    hide mid in (Buf1 |[mid]| Buf2)
	`
	l := genSrc(t, src)
	d := l.Determinize()
	// Trace put!0, put!1 must be possible, then get!0 next (FIFO order).
	s := d.Initial()
	step := func(lab string) bool {
		id := d.LookupLabel(lab)
		if id < 0 {
			return false
		}
		succ := d.Successors(s, id)
		if len(succ) != 1 {
			return false
		}
		s = succ[0]
		return true
	}
	if !step("put !0") || !step("put !1") {
		t.Fatal("two puts rejected by 2-place pipeline")
	}
	if !step("get !0") {
		t.Fatal("FIFO order violated: get !0 not available")
	}
}

func TestComments(t *testing.T) {
	l := genSrc(t, `
	-- line comment
	(* block (* nested *) comment *)
	a; stop -- trailing
	`)
	if l.NumTransitions() != 1 {
		t.Fatal("comments broke parsing")
	}
}

func TestSpecificationHeader(t *testing.T) {
	sys, err := Parse("specification demo behaviour a; stop")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sys.Name != "demo" {
		t.Fatalf("name = %q", sys.Name)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                             // empty
		"a;",                           // missing continuation
		"process P := stop",            // missing endproc
		"a; stop extra",                // trailing tokens
		"g ?x ; stop",                  // missing domain
		"g ?x:0. .2 ; stop",            // bad dots
		"[x > ] -> a; stop",            // bad expr
		"(a; stop",                     // unbalanced paren
		"hide in a; stop",              // missing gates
		"let x := 1 a; stop",           // missing in
		"a; stop ||| ",                 // dangling par
		"stop [] ",                     // dangling choice
		"(* unterminated",              // comment
		"g !x = 1 ; stop",              // single '='
		"process stop := stop endproc", // keyword as name
		"a | b",                        // lone pipe
		"exit(1,) ; stop",              // hmm exit list trailing comma
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := Parse("a; stop\n   ???")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}

func TestExprPrecedence(t *testing.T) {
	// 2+3*4 == 14 — guard true; if precedence wrong (20) guard false.
	l := genSrc(t, "[2 + 3 * 4 == 14] -> a; stop")
	if l.NumTransitions() != 1 {
		t.Fatal("arithmetic precedence broken")
	}
	l2 := genSrc(t, "[not (1 == 2) and true or false] -> a; stop")
	if l2.NumTransitions() != 1 {
		t.Fatal("boolean precedence broken")
	}
	// 'if' extends maximally right, so compare a parenthesized form.
	l3 := genSrc(t, "[(if 1 < 2 then 7 else 8) == 7] -> a; stop")
	if l3.NumTransitions() != 1 {
		t.Fatal("if-then-else in guard broken")
	}
}

func TestIfThenElseExpr(t *testing.T) {
	l := genSrc(t, "g !(if 1 < 2 then 7 else 8) ; stop")
	if l.LookupLabel("g !7") < 0 {
		t.Fatalf("labels = %v", l.Labels())
	}
}

func TestNegativeDomain(t *testing.T) {
	l := genSrc(t, "g ?x:-1..1 ; stop")
	if l.NumTransitions() != 3 {
		t.Fatalf("domain -1..1: %d transitions", l.NumTransitions())
	}
	if l.LookupLabel("g !-1") < 0 {
		t.Fatalf("labels = %v", l.Labels())
	}
}

func TestBoolOffer(t *testing.T) {
	l := genSrc(t, "g ?b:bool ; [b] -> h; stop")
	if l.LookupLabel("g !true") < 0 || l.LookupLabel("g !false") < 0 {
		t.Fatalf("labels = %v", l.Labels())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("((")
}

func TestDisableOperator(t *testing.T) {
	// A transfer that can be aborted at any time.
	l := genSrc(t, "(load; send; stop) [> abort; stop")
	d := l.Determinize()
	if len(d.Successors(d.Initial(), d.LookupLabel("abort"))) != 1 {
		t.Fatal("abort not possible initially")
	}
	sa := d.Successors(d.Initial(), d.LookupLabel("load"))
	if len(sa) != 1 || len(d.Successors(sa[0], d.LookupLabel("abort"))) != 1 {
		t.Fatal("abort not possible after load")
	}
}

func TestDisablePrecedence(t *testing.T) {
	// [> binds tighter than >>: A [> B >> C parses as (A [> B) >> C.
	l := genSrc(t, "(a; exit) [> k; stop >> c; stop")
	d := l.Determinize()
	sa := d.Successors(d.Initial(), d.LookupLabel("a"))
	if len(sa) != 1 {
		t.Fatal("a rejected")
	}
	if len(d.Successors(sa[0], d.LookupLabel("c"))) != 1 {
		t.Fatal("c should follow a's exit")
	}
}
