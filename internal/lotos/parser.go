package lotos

import (
	"fmt"

	"multival/internal/process"
)

// Parse compiles a specification into a process.System. The accepted
// grammar is (see the package comment for an example):
//
//	spec     ::= ["specification" IDENT] def* ["behaviour"|"behavior"] behav
//	def      ::= "process" IDENT ["(" IDENT ("," IDENT)* ")"] ":=" behav "endproc"
//	behav    ::= seq
//	seq      ::= par (">>" ["accept" IDENT ("," IDENT)* "in"] par)*
//	par      ::= choice (("|||" | "|[" gates "]|") choice)*
//	choice   ::= prefix ("[]" prefix)*
//	prefix   ::= IDENT offer* ";" prefix            (action prefix)
//	           | "[" expr "]" "->" prefix           (guard)
//	           | "hide" gates "in" prefix
//	           | "rename" IDENT "->" IDENT ("," ...)* "in" prefix
//	           | "let" IDENT ":="? "=="? ... — see let rule below
//	           | atom
//	let      ::= "let" IDENT ":=" expr "in" prefix
//	atom     ::= "stop" | "exit" ["(" exprs ")"] | IDENT ["(" exprs ")"]
//	           | "(" behav ")"
//	offer    ::= "!" primary | "?" IDENT ":" (INT ".." INT | "bool")
//	expr     ::= standard precedence with or/and/not, comparisons,
//	             + - * div mod, unary minus, if-then-else, literals
//
// An IDENT in behaviour position is an action prefix when followed by
// ';', '!' or '?', and a process instantiation otherwise.
func Parse(src string) (*process.System, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseSpec()
}

// MustParse is Parse that panics on error.
func MustParse(src string) *process.System {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &Error{p.tok.line, p.tok.col, fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokKind) error {
	if p.tok.kind != kind {
		return p.errorf("expected %s, got %s", tokNames[kind], p.tok)
	}
	return p.advance()
}

func (p *parser) isKw(kw string) bool {
	return p.tok.kind == tIdent && p.tok.text == kw
}

func (p *parser) acceptKw(kw string) (bool, error) {
	if p.isKw(kw) {
		return true, p.advance()
	}
	return false, nil
}

func (p *parser) ident(what string) (string, error) {
	if p.tok.kind != tIdent {
		return "", p.errorf("expected %s, got %s", what, p.tok)
	}
	if isKeyword(p.tok.text) {
		return "", p.errorf("keyword %q cannot be used as %s", p.tok.text, what)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) parseSpec() (*process.System, error) {
	name := "spec"
	if ok, err := p.acceptKw("specification"); err != nil {
		return nil, err
	} else if ok {
		n, err := p.ident("specification name")
		if err != nil {
			return nil, err
		}
		name = n
	}
	sys := process.NewSystem(name)
	for p.isKw("process") {
		if err := p.parseProcessDef(sys); err != nil {
			return nil, err
		}
	}
	if _, err := p.acceptKw("behaviour"); err != nil {
		return nil, err
	} else if p.isKw("behavior") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind == tEOF {
		return nil, p.errorf("missing root behaviour")
	}
	root, err := p.parseBehavior()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, p.errorf("unexpected %s after root behaviour", p.tok)
	}
	sys.SetRoot(root)
	return sys, nil
}

func (p *parser) parseProcessDef(sys *process.System) error {
	if err := p.advance(); err != nil { // consume "process"
		return err
	}
	name, err := p.ident("process name")
	if err != nil {
		return err
	}
	var params []string
	if p.tok.kind == tLParen {
		if err := p.advance(); err != nil {
			return err
		}
		for {
			param, err := p.ident("parameter name")
			if err != nil {
				return err
			}
			params = append(params, param)
			if p.tok.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return err
			}
		}
		if err := p.expect(tRParen); err != nil {
			return err
		}
	}
	if err := p.expect(tDefine); err != nil {
		return err
	}
	body, err := p.parseBehavior()
	if err != nil {
		return err
	}
	if !p.isKw("endproc") {
		return p.errorf("expected 'endproc', got %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return err
	}
	sys.Define(name, params, body)
	return nil
}

// parseBehavior parses a full behaviour (sequential composition level,
// the weakest-binding operator; then disabling, parallel, choice, prefix).
func (p *parser) parseBehavior() (process.Behavior, error) {
	left, err := p.parseDisable()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tSeq {
		if err := p.advance(); err != nil {
			return nil, err
		}
		var accept []string
		if ok, err := p.acceptKw("accept"); err != nil {
			return nil, err
		} else if ok {
			for {
				v, err := p.ident("accept variable")
				if err != nil {
					return nil, err
				}
				accept = append(accept, v)
				if p.tok.kind != tComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if ok, err := p.acceptKw("in"); err != nil {
				return nil, err
			} else if !ok {
				return nil, p.errorf("expected 'in' after accept variables")
			}
		}
		right, err := p.parseDisable()
		if err != nil {
			return nil, err
		}
		left = process.Seq{A: left, Accept: accept, B: right}
	}
	return left, nil
}

// parseDisable parses the disabling level: par ("[>" par)*.
func (p *parser) parseDisable() (process.Behavior, error) {
	left, err := p.parsePar()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tDisable {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePar()
		if err != nil {
			return nil, err
		}
		left = process.Disable{A: left, B: right}
	}
	return left, nil
}

func (p *parser) parsePar() (process.Behavior, error) {
	left, err := p.parseChoice()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tInter:
			if err := p.advance(); err != nil {
				return nil, err
			}
			right, err := p.parseChoice()
			if err != nil {
				return nil, err
			}
			left = process.Par{A: left, B: right}
		case tParOpen:
			if err := p.advance(); err != nil {
				return nil, err
			}
			var gates []string
			for {
				g, err := p.ident("gate name")
				if err != nil {
					return nil, err
				}
				gates = append(gates, g)
				if p.tok.kind != tComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if err := p.expect(tParClose); err != nil {
				return nil, err
			}
			right, err := p.parseChoice()
			if err != nil {
				return nil, err
			}
			left = process.SyncPar(gates, left, right)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseChoice() (process.Behavior, error) {
	left, err := p.parsePrefix()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tChoice {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		left = process.Choice{A: left, B: right}
	}
	return left, nil
}

func (p *parser) parsePrefix() (process.Behavior, error) {
	switch {
	case p.tok.kind == tLBrack:
		// Guard: [expr] -> prefix
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRBrack); err != nil {
			return nil, err
		}
		if err := p.expect(tArrow); err != nil {
			return nil, err
		}
		body, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		return process.Guard{Cond: cond, B: body}, nil

	case p.isKw("hide"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		var gates []string
		for {
			g, err := p.ident("gate name")
			if err != nil {
				return nil, err
			}
			gates = append(gates, g)
			if p.tok.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if ok, err := p.acceptKw("in"); err != nil {
			return nil, err
		} else if !ok {
			return nil, p.errorf("expected 'in' after hidden gates")
		}
		body, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		return process.HideIn(gates, body), nil

	case p.isKw("rename"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		m := map[string]string{}
		for {
			from, err := p.ident("gate name")
			if err != nil {
				return nil, err
			}
			if err := p.expect(tArrow); err != nil {
				return nil, err
			}
			to, err := p.ident("gate name")
			if err != nil {
				return nil, err
			}
			m[from] = to
			if p.tok.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if ok, err := p.acceptKw("in"); err != nil {
			return nil, err
		} else if !ok {
			return nil, p.errorf("expected 'in' after renamings")
		}
		body, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		return process.Rename{Map: m, B: body}, nil

	case p.isKw("let"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.ident("let variable")
		if err != nil {
			return nil, err
		}
		if err := p.expect(tDefine); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if ok, err := p.acceptKw("in"); err != nil {
			return nil, err
		} else if !ok {
			return nil, p.errorf("expected 'in' after let binding")
		}
		body, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		return process.Let{Var: v, E: e, B: body}, nil

	case p.isKw("stop"):
		return process.Stop{}, p.advance()

	case p.isKw("exit"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		var results []process.Expr
		if p.tok.kind == tLParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				results = append(results, e)
				if p.tok.kind != tComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if err := p.expect(tRParen); err != nil {
				return nil, err
			}
		}
		return process.Exit{Results: results}, nil

	case p.tok.kind == tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		b, err := p.parseBehavior()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return b, nil

	case p.tok.kind == tIdent:
		if isKeyword(p.tok.text) {
			return nil, p.errorf("unexpected keyword %q in behaviour", p.tok.text)
		}
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Action prefix when followed by offers or ';'.
		if p.tok.kind == tBang || p.tok.kind == tQuest || p.tok.kind == tSemi {
			return p.parseActionTail(name)
		}
		// Process instantiation.
		var args []process.Expr
		if p.tok.kind == tLParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, e)
				if p.tok.kind != tComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if err := p.expect(tRParen); err != nil {
				return nil, err
			}
		}
		return process.Call{Proc: name, Args: args}, nil

	default:
		return nil, p.errorf("unexpected %s in behaviour", p.tok)
	}
}

// parseActionTail parses the offers and continuation of an action prefix
// whose gate name has already been consumed.
func (p *parser) parseActionTail(gate string) (process.Behavior, error) {
	var offers []process.Offer
	for {
		switch p.tok.kind {
		case tBang:
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			offers = append(offers, process.Send(e))
			continue
		case tQuest:
			if err := p.advance(); err != nil {
				return nil, err
			}
			v, err := p.ident("offer variable")
			if err != nil {
				return nil, err
			}
			if err := p.expect(tColon); err != nil {
				return nil, err
			}
			if p.isKw("bool") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				offers = append(offers, process.RecvBool(v))
				continue
			}
			lo, err := p.parseSignedInt()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tDotDot); err != nil {
				return nil, err
			}
			hi, err := p.parseSignedInt()
			if err != nil {
				return nil, err
			}
			offers = append(offers, process.Recv(v, lo, hi))
			continue
		}
		break
	}
	if err := p.expect(tSemi); err != nil {
		return nil, err
	}
	cont, err := p.parsePrefix()
	if err != nil {
		return nil, err
	}
	return process.Prefix{Gate: gate, Offers: offers, Cont: cont}, nil
}

func (p *parser) parseSignedInt() (int, error) {
	neg := false
	if p.tok.kind == tMinus {
		neg = true
		if err := p.advance(); err != nil {
			return 0, err
		}
	}
	if p.tok.kind != tInt {
		return 0, p.errorf("expected integer, got %s", p.tok)
	}
	n := p.tok.n
	if neg {
		n = -n
	}
	return n, p.advance()
}
